open Costar_grammar
open Costar_grammar.Symbols
open Config

exception Left_rec of nonterminal

(* Closure carries one visited-set snapshot per frame, mirroring the
   machine's visited set: pushing a frame for nonterminal [y] extends the
   top snapshot with [y], and popping a frame restores the caller's
   snapshot (the machine's "remove on return").  Expanding a nonterminal
   already in the top snapshot witnesses a nullable cycle, i.e. genuine
   left recursion.

   Frames are interned ids, so inspecting the top symbol is an array read
   ([Frames.head]) and pushing residues/right-hand sides is a hash-consing
   [Frames.cons]; the exploration order and semantics are step-for-step
   those of [Structural.Sll.closure_ext] (the differential oracle). *)
let closure_ext g anl configs =
  let fr = Analysis.frames anl in
  let seen = Sll_tbl.create 64 in
  let stable = ref [] in
  let forked = ref false in
  let rec go cfg vises =
    if not (Sll_tbl.mem seen cfg) then begin
      Sll_tbl.add seen cfg ();
      if Frames.spine_is_nil cfg.s_frames then begin
        match cfg.s_ctx with
        | Ctx_accept -> stable := cfg :: !stable
        | Ctx_nt x ->
          (* Simulated return past the truncated stack: fork to every static
             caller continuation; accept if end-of-input is legal after x.
             This is the one place where SLL diverges from LL (which would
             return to the actual parse stack), so it is recorded. *)
          forked := true;
          List.iter
            (fun (y, beta) ->
              go
                { cfg with s_frames = Frames.cons fr beta Frames.nil; s_ctx = Ctx_nt y }
                [ Int_set.empty ])
            (Analysis.callers_framed anl x);
          if Analysis.endable anl x then
            go { cfg with s_frames = Frames.nil; s_ctx = Ctx_accept } []
      end
      else begin
        let top = Frames.spine_frame fr cfg.s_frames in
        let rest = Frames.spine_tail fr cfg.s_frames in
        match Frames.head fr top, vises with
        | Frames.Empty, _ :: vs -> go { cfg with s_frames = rest } vs
        | Frames.Term _, _ -> stable := cfg :: !stable
        | Frames.Nonterm (y, suf), vis :: vs ->
          if Int_set.mem y vis then raise (Left_rec y)
          else
            (* Do not stack an empty residue frame: it would pop vacuously
               later, and during long prediction scans (e.g. the XML
               attribute loop) such residues otherwise accumulate, making
               configurations grow linearly with the scan. *)
            let frames_below, vises_below =
              if suf = Frames.empty_frame then (rest, vs)
              else (Frames.cons fr suf rest, vis :: vs)
            in
            let vises = Int_set.add y vis :: vises_below in
            List.iter
              (fun ix ->
                go
                  { cfg with
                    s_frames = Frames.cons fr (Frames.rhs_frame fr ix) frames_below
                  }
                  vises)
              (Grammar.prods_of g y)
        | _, [] -> assert false (* one snapshot per frame *)
      end
    end
  in
  let fresh cfg =
    List.init (Frames.spine_length fr cfg.s_frames) (fun _ -> Int_set.empty)
  in
  match List.iter (fun c -> go c (fresh c)) configs with
  | () -> Ok (List.sort_uniq compare_sll !stable, !forked)
  | exception Left_rec x -> Error (Types.Left_recursive x)

let closure g anl configs = Result.map fst (closure_ext g anl configs)

(* Closure of a configuration set through the per-configuration memo table
   threaded in the cache: closure(S) = union over c in S of closure({c}). *)
let closure_cached_ext g anl cache configs =
  let rec go cache acc forked = function
    | [] -> (cache, Ok (List.sort_uniq compare_sll (List.concat acc), forked))
    | cfg :: rest -> (
      let cache, result =
        match Cache.find_closure cache cfg with
        | Some r ->
          Instr.record_closure_hit ();
          (cache, r)
        | None ->
          Instr.record_closure_miss ();
          let r = closure_ext g anl [ cfg ] in
          (Cache.add_closure cache cfg r, r)
      in
      match result with
      | Error e -> (cache, Error e)
      | Ok (stable, f) -> go cache (stable :: acc) (forked || f) rest)
  in
  go cache [] false configs

let closure_cached g anl cache configs =
  let cache, result = closure_cached_ext g anl cache configs in
  (cache, Result.map fst result)

let move anl configs a =
  let fr = Analysis.frames anl in
  List.filter_map
    (fun cfg ->
      if Frames.spine_is_nil cfg.s_frames then None
      else
        match Frames.head fr (Frames.spine_frame fr cfg.s_frames) with
        | Frames.Term (a', residue) when a' = a ->
          Some
            { cfg with
              s_frames =
                Frames.cons fr residue (Frames.spine_tail fr cfg.s_frames)
            }
        | _ -> None)
    configs

let init_configs g anl x =
  let fr = Analysis.frames anl in
  List.map
    (fun ix ->
      {
        s_pred = ix;
        s_frames = Frames.cons fr (Frames.rhs_frame fr ix) Frames.nil;
        s_ctx = Ctx_nt x;
      })
    (Grammar.prods_of g x)

(* The lookahead stream is an array cursor: [kinds] holds one terminal id
   per remaining token (valid up to [len]), [i] is the current position.
   The warm path never touches a token record — only [kinds.(i)]. *)
let rec loop g anl depth cache sid kinds len i =
  let info = Cache.info cache sid in
  match info.Cache.verdict with
  | Cache.V_empty -> (cache, Types.Reject_pred, depth)
  | Cache.V_all_pred p -> (cache, Types.Unique_pred p, depth)
  | Cache.V_pending ->
    if i >= len then
      match info.Cache.accepting with
      | [] -> (cache, Types.Reject_pred, depth)
      | [ p ] -> (cache, Types.Unique_pred p, depth)
      | p :: _ -> (cache, Types.Ambig_pred p, depth)
    else begin
      let a = Bigarray.Array1.unsafe_get kinds i in
      Instr.record_cov_edge sid a;
      (* Warm path: a pair of array reads. *)
      let sid' = Cache.trans_get cache sid a in
      if sid' >= 0 then begin
        Instr.record_trans_hit ();
        loop g anl (depth + 1) cache sid' kinds len (i + 1)
      end
      else begin
        Instr.record_trans_miss ();
        match closure_cached g anl cache (move anl info.Cache.configs a) with
        | cache, Error e -> (cache, Types.Error_pred e, depth)
        | cache, Ok configs' ->
          let cache, sid' = Cache.intern cache configs' in
          let cache = Cache.add_trans cache sid a sid' in
          loop g anl (depth + 1) cache sid' kinds len (i + 1)
      end
    end

let init g anl sid_cache x =
  (* Spine ids only mean something in the interner they were created in, so
     a cache consulted through a different analysis would read garbage; fail
     loudly instead. *)
  if Cache.frames sid_cache != Analysis.frames anl then
    invalid_arg "Sll: cache belongs to a different analysis";
  match Cache.find_init sid_cache x with
  | Some sid -> Ok (sid_cache, sid)
  | None -> (
    match closure_cached g anl sid_cache (init_configs g anl x) with
    | _, Error e -> Error e
    | cache, Ok configs ->
      let cache, sid = Cache.intern cache configs in
      Ok (Cache.add_init cache x sid, sid))

let prepare ?(deep = false) g anl cache x =
  match init g anl cache x with
  | Error _ -> cache
  | Ok (cache, sid) ->
    if not deep then cache
    else begin
      (* Also precompute the first DFA transition on every terminal: the
         initial configuration sets of decision-heavy grammars are by far
         the largest, so their outgoing closures dominate per-input cache
         warm-up even though they are input-independent. *)
      let info = Cache.info cache sid in
      match info.Cache.verdict with
      | Cache.V_empty | Cache.V_all_pred _ -> cache
      | Cache.V_pending ->
        let cache = ref cache in
        for a = 0 to Grammar.num_terminals g - 1 do
          if Cache.find_trans !cache sid a = None then
            match closure_cached g anl !cache (move anl info.Cache.configs a) with
            | cache', Error _ -> cache := cache'
            | cache', Ok configs' ->
              let cache', sid' = Cache.intern cache' configs' in
              cache := Cache.add_trans cache' sid a sid'
        done;
        !cache
    end

let predict_general_ext g anl cache x kinds len i =
  match init g anl cache x with
  | Error e -> (cache, Types.Error_pred e, 0)
  | Ok (cache, sid) ->
    let cache, result, depth = loop g anl 0 cache sid kinds len i in
    Instr.record_sll x depth;
    (cache, result, depth)

let predict_general g anl cache x kinds len i =
  let cache, result, _depth = predict_general_ext g anl cache x kinds len i in
  (cache, result)

exception Fast_miss

(* Allocation-free walk over already-computed DFA transitions, returning
   preboxed verdicts; raises [Fast_miss] on the first uncomputed edge.  It
   never touches configurations or frames — only per-state verdicts and
   int transition rows — so it does not need the interner-identity guard of
   [init] (those facts are grammar-level and interner-independent). *)
let rec fast_verdict cache sid kinds len i =
  let info = Cache.info cache sid in
  match info.Cache.verdict with
  | Cache.V_empty -> Types.Reject_pred
  | Cache.V_all_pred _ -> info.Cache.decided_pred
  | Cache.V_pending ->
    if i >= len then info.Cache.eof_pred
    else
      let sid' = Cache.trans_get cache sid (Bigarray.Array1.unsafe_get kinds i) in
      if sid' >= 0 then fast_verdict cache sid' kinds len (i + 1)
      else raise_notrace Fast_miss

let predict_cursor g anl cache x kinds len i =
  (* Warm fast path: once the relevant DFA fragment exists, a prediction is
     a chain of array reads ending in a preboxed verdict.  Any miss (or
     instrumentation, which wants depth counts or per-edge coverage) falls
     back to the general loop, which re-walks the short prefix and extends
     the DFA. *)
  if !Instr.enabled || !Instr.cov_enabled then
    predict_general g anl cache x kinds len i
  else
    let sid0 = Cache.init_get cache x in
    if sid0 < 0 then predict_general g anl cache x kinds len i
    else
      match fast_verdict cache sid0 kinds len i with
      | p -> (cache, p)
      | exception Fast_miss -> predict_general g anl cache x kinds len i

let predict_word g anl cache x (w : Word.t) i =
  predict_cursor g anl cache x w.Word.kinds w.Word.len i

(* Like [predict_cursor], but also reports the lookahead depth at which the
   verdict was reached.  The warm fast path cannot count (it walks preboxed
   verdicts), so a fast-path reject re-walks the general loop — rejects are
   cold by construction (each one ends the parse or triggers recovery), so
   the re-walk never shows up on the hot path the allocation fences pin. *)
let predict_cursor_ext g anl cache x kinds len i =
  if !Instr.enabled || !Instr.cov_enabled then
    predict_general_ext g anl cache x kinds len i
  else
    let sid0 = Cache.init_get cache x in
    if sid0 < 0 then predict_general_ext g anl cache x kinds len i
    else
      match fast_verdict cache sid0 kinds len i with
      | Types.Reject_pred -> predict_general_ext g anl cache x kinds len i
      | p -> (cache, p, 0)
      | exception Fast_miss -> predict_general_ext g anl cache x kinds len i

let predict_word_ext g anl cache x (w : Word.t) i =
  predict_cursor_ext g anl cache x w.Word.kinds w.Word.len i

(* The legacy list API, as a thin wrapper over the cursor core. *)
let predict g anl cache x tokens =
  let w = Word.of_tokens tokens in
  predict_word g anl cache x w 0
