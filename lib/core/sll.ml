open Costar_grammar
open Costar_grammar.Symbols
open Config

exception Left_rec of nonterminal

(* Closure carries one visited-set snapshot per frame, mirroring the
   machine's visited set: pushing a frame for nonterminal [y] extends the
   top snapshot with [y], and popping a frame restores the caller's
   snapshot (the machine's "remove on return").  Expanding a nonterminal
   already in the top snapshot witnesses a nullable cycle, i.e. genuine
   left recursion. *)
let closure_ext g anl configs =
  let seen = ref Sll_set.empty in
  let stable = ref [] in
  let forked = ref false in
  let rec go cfg vises =
    if not (Sll_set.mem cfg !seen) then begin
      seen := Sll_set.add cfg !seen;
      match cfg.s_frames, vises with
      | [], _ -> (
        match cfg.s_ctx with
        | Ctx_accept -> stable := cfg :: !stable
        | Ctx_nt x ->
          (* Simulated return past the truncated stack: fork to every static
             caller continuation; accept if end-of-input is legal after x.
             This is the one place where SLL diverges from LL (which would
             return to the actual parse stack), so it is recorded. *)
          forked := true;
          List.iter
            (fun (y, beta) ->
              go
                { cfg with s_frames = [ beta ]; s_ctx = Ctx_nt y }
                [ Int_set.empty ])
            (Analysis.callers anl x);
          if Analysis.endable anl x then
            go { cfg with s_frames = []; s_ctx = Ctx_accept } [])
      | [] :: rest, _ :: vs -> go { cfg with s_frames = rest } vs
      | (T _ :: _) :: _, _ -> stable := cfg :: !stable
      | (NT y :: suf) :: rest, vis :: vs ->
        if Int_set.mem y vis then raise (Left_rec y)
        else
          (* Do not stack an empty residue frame: it would pop vacuously
             later, and during long prediction scans (e.g. the XML
             attribute loop) such residues otherwise accumulate, making
             configurations — and hence every set comparison — grow
             linearly with the scan. *)
          let frames_below, vises_below =
            if suf = [] then (rest, vs) else (suf :: rest, vis :: vs)
          in
          let vises = Int_set.add y vis :: vises_below in
          List.iter
            (fun rhs -> go { cfg with s_frames = rhs :: frames_below } vises)
            (Grammar.rhss_of g y)
      | _ :: _, [] -> assert false (* one snapshot per frame *)
    end
  in
  let fresh cfg = List.map (fun _ -> Int_set.empty) cfg.s_frames in
  match List.iter (fun c -> go c (fresh c)) configs with
  | () -> Ok (List.sort_uniq compare_sll !stable, !forked)
  | exception Left_rec x -> Error (Types.Left_recursive x)

let closure g anl configs = Result.map fst (closure_ext g anl configs)

(* Closure of a configuration set through the per-configuration memo table
   threaded in the cache: closure(S) = union over c in S of closure({c}). *)
let closure_cached_ext g anl cache configs =
  let rec go cache acc forked = function
    | [] -> (cache, Ok (List.sort_uniq compare_sll (List.concat acc), forked))
    | cfg :: rest -> (
      let cache, result =
        match Cache.find_closure cache cfg with
        | Some r -> (cache, r)
        | None ->
          let r = closure_ext g anl [ cfg ] in
          (Cache.add_closure cache cfg r, r)
      in
      match result with
      | Error e -> (cache, Error e)
      | Ok (stable, f) -> go cache (stable :: acc) (forked || f) rest)
  in
  go cache [] false configs

let closure_cached g anl cache configs =
  let cache, result = closure_cached_ext g anl cache configs in
  (cache, Result.map fst result)

let move configs a =
  List.filter_map
    (fun cfg ->
      match cfg.s_frames with
      | (T a' :: suf) :: rest when a' = a ->
        Some { cfg with s_frames = suf :: rest }
      | _ -> None)
    configs

let init_configs g x =
  List.map
    (fun ix ->
      { s_pred = ix; s_frames = [ (Grammar.prod g ix).rhs ]; s_ctx = Ctx_nt x })
    (Grammar.prods_of g x)

let rec loop g anl depth cache sid tokens =
  let info = Cache.info cache sid in
  match info.Cache.verdict with
  | Cache.V_empty -> (cache, Types.Reject_pred, depth)
  | Cache.V_all_pred p -> (cache, Types.Unique_pred p, depth)
  | Cache.V_pending -> (
    match tokens with
    | [] -> (
      match info.Cache.accepting with
      | [] -> (cache, Types.Reject_pred, depth)
      | [ p ] -> (cache, Types.Unique_pred p, depth)
      | p :: _ -> (cache, Types.Ambig_pred p, depth))
    | tok :: rest -> (
      let a = tok.Token.term in
      match Cache.find_trans cache sid a with
      | Some sid' -> loop g anl (depth + 1) cache sid' rest
      | None -> (
        match closure_cached g anl cache (move info.Cache.configs a) with
        | cache, Error e -> (cache, Types.Error_pred e, depth)
        | cache, Ok configs' ->
          let cache, sid' = Cache.intern cache configs' in
          let cache = Cache.add_trans cache sid a sid' in
          loop g anl (depth + 1) cache sid' rest)))

let init g anl sid_cache x =
  match Cache.find_init sid_cache x with
  | Some sid -> Ok (sid_cache, sid)
  | None -> (
    match closure_cached g anl sid_cache (init_configs g x) with
    | _, Error e -> Error e
    | cache, Ok configs ->
      let cache, sid = Cache.intern cache configs in
      Ok (Cache.add_init cache x sid, sid))

let prepare ?(deep = false) g anl cache x =
  match init g anl cache x with
  | Error _ -> cache
  | Ok (cache, sid) ->
    if not deep then cache
    else begin
      (* Also precompute the first DFA transition on every terminal: the
         initial configuration sets of decision-heavy grammars are by far
         the largest, so their outgoing closures dominate per-input cache
         warm-up even though they are input-independent. *)
      let info = Cache.info cache sid in
      match info.Cache.verdict with
      | Cache.V_empty | Cache.V_all_pred _ -> cache
      | Cache.V_pending ->
        let cache = ref cache in
        for a = 0 to Grammar.num_terminals g - 1 do
          if Cache.find_trans !cache sid a = None then
            match closure_cached g anl !cache (move info.Cache.configs a) with
            | cache', Error _ -> cache := cache'
            | cache', Ok configs' ->
              let cache', sid' = Cache.intern cache' configs' in
              cache := Cache.add_trans cache' sid a sid'
        done;
        !cache
    end

let predict g anl cache x tokens =
  match init g anl cache x with
  | Error e -> (cache, Types.Error_pred e)
  | Ok (cache, sid) ->
    let cache, result, depth = loop g anl 0 cache sid tokens in
    Instr.record_sll x depth;
    (cache, result)
