(** SLL prediction (paper, §3.4–3.5): the fast, cache-backed, imprecise
    simulation.

    SLL subparsers run on truncated stacks.  When a subparser exhausts its
    frames it simulates a return to every statically computed caller
    continuation of the context nonterminal (the "stable return" frames of
    §3.5), which makes SLL a sound overapproximation of LL: every LL-viable
    subparser has a surviving SLL counterpart.  Consequences used by
    {!Predict}:

    - [Unique_pred] is trustworthy (LL would choose the same side);
    - [Reject_pred] is trustworthy (LL would reject too);
    - [Ambig_pred] merely means "several candidates survived to end of
      input" and must be re-checked in LL mode. *)

open Costar_grammar
open Costar_grammar.Symbols

(** One closure/move round, exposed for testing.  [closure] saturates a
    configuration set to its stable configurations (top symbol a terminal, or
    accepting); it detects left recursion on nullable expansion cycles. *)
val closure :
  Grammar.t ->
  Analysis.t ->
  Config.sll list ->
  (Config.sll list, Types.error) result

(** Like {!closure}, but additionally reports whether the closure performed
    a stable-return fork (see {!closure_cached_ext}).  The uncached
    primitive both cached variants build on; exposed for the differential
    tests against [Structural.Sll.closure_ext]. *)
val closure_ext :
  Grammar.t ->
  Analysis.t ->
  Config.sll list ->
  (Config.sll list * bool, Types.error) result

(** [closure_cached g a cache configs] is {!closure} through the cache's
    per-configuration memo table: the closure of a set is the union of its
    members' closures, so single-configuration results are reusable across
    DFA states. *)
val closure_cached :
  Grammar.t ->
  Analysis.t ->
  Cache.t ->
  Config.sll list ->
  Cache.t * (Config.sll list, Types.error) result

(** Like {!closure_cached}, but additionally reports whether any
    configuration's closure performed a {e stable-return fork} — a simulated
    return past the truncated stack to the statically computed caller
    continuations (§3.5).  The fork is exactly where SLL overapproximates LL,
    so the static analyzer uses the flag to mark decisions whose SLL
    simulation leaves the exact-LL fragment.  The flag is memoized alongside
    the closure result, so asking costs nothing once the cache is warm. *)
val closure_cached_ext :
  Grammar.t ->
  Analysis.t ->
  Cache.t ->
  Config.sll list ->
  Cache.t * (Config.sll list * bool, Types.error) result

(** [move anl configs a] advances every stable configuration whose top
    symbol is the terminal [a]; accepting configurations are dropped. *)
val move : Analysis.t -> Config.sll list -> terminal -> Config.sll list

(** Initial configuration set for a decision nonterminal: one configuration
    per right-hand side. *)
val init_configs : Grammar.t -> Analysis.t -> nonterminal -> Config.sll list

(** [prepare g a cache x] precomputes and interns the initial DFA state for
    decision nonterminal [x] (a no-op if already present, or if the closure
    detects left recursion — the error then resurfaces at prediction time).
    With [~deep:true], the state's outgoing transition on every terminal is
    precomputed as well (all of it input-independent).  Folding [prepare]
    over all nonterminals builds the static grammar cache of the paper's
    footnote 7. *)
val prepare :
  ?deep:bool -> Grammar.t -> Analysis.t -> Cache.t -> nonterminal -> Cache.t

(** [predict g a cache x tokens] runs SLL prediction for decision
    nonterminal [x] against the remaining tokens, reading and extending the
    DFA cache.  A thin wrapper over {!predict_word} — the cursor API the
    machine itself uses. *)
val predict :
  Grammar.t ->
  Analysis.t ->
  Cache.t ->
  nonterminal ->
  Token.t list ->
  Cache.t * Types.prediction

(** [predict_word g a cache x w i] is prediction over the array cursor:
    lookahead reads [w.kinds.(i)], [w.kinds.(i+1)], ... directly — the
    warm path allocates nothing and touches no token records. *)
val predict_word :
  Grammar.t ->
  Analysis.t ->
  Cache.t ->
  nonterminal ->
  Word.t ->
  int ->
  Cache.t * Types.prediction

(** Like {!predict_word}, but additionally reports the lookahead depth at
    which the verdict was reached (tokens examined past position [i]).
    The depth is exact whenever the verdict is [Reject_pred] or the general
    loop ran (cold cache, instrumentation); on the warm fast path a decided
    verdict reports depth 0 — callers that need depth for diagnostics only
    need it on rejects, where it is always exact. *)
val predict_word_ext :
  Grammar.t ->
  Analysis.t ->
  Cache.t ->
  nonterminal ->
  Word.t ->
  int ->
  Cache.t * Types.prediction * int
