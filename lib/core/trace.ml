open Costar_grammar
open Costar_grammar.Symbols

let pp_frame env ppf (f : Machine.frame) =
  let g = env.Machine.g in
  (match f.Machine.label with
  | Some x -> Fmt.pf ppf "%s:" (Grammar.nonterminal_name g x)
  | None -> ());
  Grammar.pp_symbols g ppf f.Machine.suf

let pp_state env ppf (st : Machine.state) =
  let g = env.Machine.g in
  (* Suffix stack, top frame first. *)
  Fmt.pf ppf "@[<h>[%a]"
    Fmt.(list ~sep:(any " | ") (pp_frame env))
    (st.Machine.top :: st.Machine.frames);
  (* Partial trees in the top prefix frame. *)
  (match st.Machine.top.Machine.trees_rev with
  | [] -> ()
  | trees ->
    Fmt.pf ppf "  trees: %a"
      Fmt.(list ~sep:sp (Tree.pp g))
      (List.rev trees));
  (* Remaining input and visited set. *)
  Fmt.pf ppf "  input: %s"
    (match Machine.remaining_tokens st with
    | [] -> "<eof>"
    | toks ->
      String.concat " "
        (List.map (fun t -> Grammar.terminal_name g t.Token.term) toks));
  Fmt.pf ppf "  visited: {%s}@]"
    (String.concat ","
       (List.map (Grammar.nonterminal_name g) (Int_set.elements st.Machine.visited)))

let run p tokens =
  let env = Parser.env p in
  let lines = ref [] in
  let result =
    Parser.run_inspect p
      ~inspect:(fun st -> lines := Fmt.str "%a" (pp_state env) st :: !lines)
      tokens
  in
  (List.rev !lines, result)

let print p tokens =
  let lines, result = run p tokens in
  List.iteri (fun i line -> Printf.printf "(s%d) %s\n" i line) lines;
  Printf.printf "=> %s\n"
    (Fmt.str "%a" (Parser.pp_result (Parser.grammar p)) result);
  result
