open Costar_grammar

type 'a actions = {
  on_token : Token.t -> 'a;
  on_production : Grammar.production -> 'a list -> 'a;
}

let eval g actions tree =
  let exception Malformed of string in
  let rec go = function
    | Tree.Leaf tok -> actions.on_token tok
    | Tree.Node (x, kids) -> (
      let roots = List.map Tree.root kids in
      match Grammar.find_production g x roots with
      | Some p -> actions.on_production p (List.map go kids)
      | None ->
        raise
          (Malformed
             (Printf.sprintf "no production %s -> ... matches the node's children"
                (Grammar.nonterminal_name g x))))
    | Tree.Error _ ->
      raise (Malformed "cannot evaluate a partial tree with error nodes")
  in
  match go tree with
  | v -> Ok v
  | exception Malformed msg -> Error msg

type 'a result =
  | Value of 'a
  | Ambiguous_value of 'a
  | Rejected of string
  | Failed of Types.error

let run p actions tokens =
  let g = Parser.grammar p in
  let evaluate v k =
    match eval g actions v with
    | Ok value -> k value
    | Error msg -> Failed (Types.Invalid_state msg)
  in
  match Parser.run p tokens with
  | Parser.Unique v -> evaluate v (fun value -> Value value)
  | Parser.Ambig v -> evaluate v (fun value -> Ambiguous_value value)
  | Parser.Reject msg -> Rejected msg
  | Parser.Error e -> Failed e
