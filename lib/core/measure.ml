open Costar_grammar
open Costar_grammar.Symbols

type score = {
  base : int;
  digits : int array;
}

let compare_score s1 s2 =
  if s1.base <> s2.base then
    invalid_arg "Measure.compare_score: scores over different grammars"
  else begin
    let len = max (Array.length s1.digits) (Array.length s2.digits) in
    let digit a i = if i < Array.length a then a.(i) else 0 in
    let rec go i =
      if i < 0 then 0
      else
        let c = Int.compare (digit s1.digits i) (digit s2.digits i) in
        if c <> 0 then c else go (i - 1)
    in
    go (len - 1)
  end

let stack_score g ~visited sufs =
  (* The paper's base is [1 + maxRhsLen]; we clamp to >= 2 so the bottom
     frame's single start symbol is a valid digit even for grammars whose
     right-hand sides are all empty. *)
  let base = max 2 (1 + Grammar.max_rhs_len g) in
  let u = Grammar.num_nonterminals g in
  let v = Int_set.cardinal visited in
  let e0 = u - v in
  let n_frames = List.length sufs in
  let digits = Array.make (e0 + n_frames) 0 in
  List.iteri
    (fun i suf ->
      (* frameScore(psi, b, e) = b^e * |unprocessed psi|; the exponent grows
         by one per lower frame, starting at |U \ V| for the top frame. *)
      digits.(e0 + i) <- digits.(e0 + i) + List.length suf)
    sufs;
  (* The digit bound |suf| <= maxRhsLen < base keeps this a valid base-b
     numeral, so digit-wise comparison is exact numeric comparison. *)
  assert (Array.for_all (fun d -> d < base) digits);
  { base; digits }

type t = {
  tokens : int;
  score : score;
  height : int;
}

let meas g (st : Machine.state) =
  let sufs =
    st.Machine.top.Machine.suf
    :: List.map (fun f -> f.Machine.suf) st.Machine.frames
  in
  {
    tokens = Machine.remaining st;
    score = stack_score g ~visited:st.Machine.visited sufs;
    height = List.length sufs;
  }

let compare m1 m2 =
  let c = Int.compare m1.tokens m2.tokens in
  if c <> 0 then c
  else
    let c = compare_score m1.score m2.score in
    if c <> 0 then c else Int.compare m1.height m2.height

let pp ppf m =
  Fmt.pf ppf "(%d tokens, score[%a], height %d)" m.tokens
    Fmt.(array ~sep:comma int)
    m.score.digits m.height
