open Costar_grammar
open Costar_grammar.Symbols
open Config

exception Left_rec of nonterminal

(* See the comment on [Sll.closure]: one visited-set snapshot per frame,
   restored on pop, so that completed nullable subtrees do not poison later
   expansions of the same nonterminal.  LL configurations are interned like
   SLL ones (the [seen] table hashes two ints per entry); unlike SLL
   closure, the simulated stack here is the parser's full remaining suffix
   stack, so exhausting it means accepting position rather than a
   stable-return fork. *)
let closure g anl configs =
  let fr = Analysis.frames anl in
  let seen : (ll, unit) Hashtbl.t = Hashtbl.create 64 in
  let stable = ref [] in
  let rec go cfg vises =
    if not (Hashtbl.mem seen cfg) then begin
      Hashtbl.add seen cfg ();
      if Frames.spine_is_nil cfg.l_frames then
        (* The simulated stack is exhausted: this subparser is in accepting
           position (viable only if the input ends here). *)
        stable := cfg :: !stable
      else begin
        let top = Frames.spine_frame fr cfg.l_frames in
        let rest = Frames.spine_tail fr cfg.l_frames in
        match Frames.head fr top, vises with
        | Frames.Empty, _ :: vs -> go { cfg with l_frames = rest } vs
        | Frames.Term _, _ -> stable := cfg :: !stable
        | Frames.Nonterm (y, suf), vis :: vs ->
          if Int_set.mem y vis then raise (Left_rec y)
          else
            (* See Sll.closure: skip empty residue frames. *)
            let frames_below, vises_below =
              if suf = Frames.empty_frame then (rest, vs)
              else (Frames.cons fr suf rest, vis :: vs)
            in
            let vises = Int_set.add y vis :: vises_below in
            List.iter
              (fun ix ->
                go
                  { cfg with
                    l_frames = Frames.cons fr (Frames.rhs_frame fr ix) frames_below
                  }
                  vises)
              (Grammar.prods_of g y)
        | _, [] -> assert false (* one snapshot per frame *)
      end
    end
  in
  let fresh cfg =
    List.init (Frames.spine_length fr cfg.l_frames) (fun _ -> Int_set.empty)
  in
  match List.iter (fun c -> go c (fresh c)) configs with
  | () -> Ok (List.sort_uniq compare_ll !stable)
  | exception Left_rec x -> Error (Types.Left_recursive x)

let move anl configs a =
  let fr = Analysis.frames anl in
  List.filter_map
    (fun cfg ->
      if Frames.spine_is_nil cfg.l_frames then None
      else
        match Frames.head fr (Frames.spine_frame fr cfg.l_frames) with
        | Frames.Term (a', residue) when a' = a ->
          Some
            { cfg with
              l_frames =
                Frames.cons fr residue (Frames.spine_tail fr cfg.l_frames)
            }
        | _ -> None)
    configs

let init_configs g anl x conts =
  let fr = Analysis.frames anl in
  (* The parser's continuations are right-hand-side suffixes (plus the
     bottom [NT start] frame), so interning them is a table hit in the
     common case and a one-time dynamic insertion otherwise. *)
  let conts_spine = Frames.spine_of_frames fr conts in
  List.map
    (fun ix ->
      {
        l_pred = ix;
        l_frames = Frames.cons fr (Frames.rhs_frame fr ix) conts_spine;
      })
    (Grammar.prods_of g x)

let is_accepting cfg = Frames.spine_is_nil cfg.l_frames

(* Lookahead is an array cursor (terminal ids in [kinds], valid up to
   [len], starting at [i]); LL prediction is rare (SLL failover only), but
   it shares the machine's input representation so the fallback needs no
   list reconstruction. *)
let predict_cursor_ext g anl x conts kinds len i0 =
  let rec loop depth configs i =
    match preds_of_ll configs with
    | [] -> (Types.Reject_pred, depth)
    | [ p ] -> (Types.Unique_pred p, depth)
    | _ ->
      if i >= len then
        match preds_of_ll (List.filter is_accepting configs) with
        | [] -> (Types.Reject_pred, depth)
        | [ p ] -> (Types.Unique_pred p, depth)
        | p :: _ -> (Types.Ambig_pred p, depth)
      else (
        match closure g anl (move anl configs (Bigarray.Array1.unsafe_get kinds i)) with
        | Error e -> (Types.Error_pred e, depth)
        | Ok configs' -> loop (depth + 1) configs' (i + 1))
  in
  match closure g anl (init_configs g anl x conts) with
  | Error e -> (Types.Error_pred e, 0)
  | Ok configs ->
    let result, depth = loop 0 configs i0 in
    Instr.record_ll x depth;
    (result, depth)

let predict_cursor g anl x conts kinds len i0 =
  fst (predict_cursor_ext g anl x conts kinds len i0)

let predict_word g anl x conts (w : Word.t) i =
  predict_cursor g anl x conts w.Word.kinds w.Word.len i

let predict_word_ext g anl x conts (w : Word.t) i =
  predict_cursor_ext g anl x conts w.Word.kinds w.Word.len i

let predict g anl x conts tokens =
  predict_word g anl x conts (Word.of_tokens tokens) 0
