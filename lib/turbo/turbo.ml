open Costar_grammar
open Costar_grammar.Symbols
module Core = Costar_core

(* Turbo is the "unverified baseline": it deliberately builds on the
   structural (pre-interning) engine, so the interned core is measured
   against an independent representation. *)
module Config = Core.Structural.Config
module Sll = Core.Structural.Sll
module Ll = Core.Structural.Ll

(* Deep-hashing hash tables: the default [Hashtbl.hash] inspects only ~10
   nodes, which makes every large configuration key collide; these traverse
   enough of the structure to discriminate. *)
module Cfg_tbl = Hashtbl.Make (struct
  type t = Config.sll

  let equal a b = Config.compare_sll a b = 0
  let hash c = Hashtbl.hash_param 500 5000 c
end)

module Cfgs_tbl = Hashtbl.Make (struct
  type t = Config.sll list

  let equal a b =
    List.compare_lengths a b = 0 && List.for_all2 (fun x y -> Config.compare_sll x y = 0) a b

  let hash c = Hashtbl.hash_param 500 5000 c
end)

(* Precomputed facts about an interned DFA state: [verdict] is -2 for the
   empty state, a production index when every configuration agrees, or -1
   when the state is still undecided. *)
type info = {
  configs : Config.sll list;
  verdict : int;
  accepting : int list;
}

type t = {
  g : Grammar.t;
  anl : Analysis.t;
  n_terms : int;
  single : int array;  (* nt -> its only production, or -1 *)
  dispatch : int array;  (* nt * n_terms + term -> prod | -1 conflict | -2 none *)
  dispatch_eof : int array;
  state_ids : int Cfgs_tbl.t;
  mutable infos : info array;
  mutable n_states : int;
  trans : (int, int) Hashtbl.t;  (* sid * n_terms + term -> sid *)
  mutable inits : int array;  (* nt -> initial DFA state, or -1 *)
  closure_memo : (Config.sll list, Core.Types.error) result Cfg_tbl.t;
}

let grammar t = t.g

let build_dispatch g anl =
  let nts = Grammar.num_nonterminals g and terms = Grammar.num_terminals g in
  let cells = Array.make (nts * terms) (-2) in
  let eof = Array.make nts (-2) in
  let add slot ix arr = arr.(slot) <- (if arr.(slot) = -2 then ix else -1) in
  Array.iter
    (fun p ->
      let x = p.Grammar.lhs in
      Int_set.iter
        (fun a -> add ((x * terms) + a) p.ix cells)
        (Analysis.first_seq anl p.rhs);
      if Analysis.nullable_seq anl p.rhs then begin
        Int_set.iter (fun a -> add ((x * terms) + a) p.ix cells) (Analysis.follow anl x);
        if Analysis.follow_end anl x then add x p.ix eof
      end)
    (Grammar.prods g);
  (cells, eof)

let create g =
  let anl = Analysis.make g in
  let dispatch, dispatch_eof = build_dispatch g anl in
  let nts = Grammar.num_nonterminals g in
  let single =
    Array.init nts (fun x ->
        match Grammar.prods_of g x with [ ix ] -> ix | _ -> -1)
  in
  {
    g;
    anl;
    n_terms = Grammar.num_terminals g;
    single;
    dispatch;
    dispatch_eof;
    state_ids = Cfgs_tbl.create 64;
    infos = Array.make 16 { configs = []; verdict = -2; accepting = [] };
    n_states = 0;
    trans = Hashtbl.create 256;
    inits = Array.make nts (-1);
    closure_memo = Cfg_tbl.create 256;
  }

let reset_cache t =
  Cfgs_tbl.reset t.state_ids;
  Hashtbl.reset t.trans;
  Cfg_tbl.reset t.closure_memo;
  t.n_states <- 0;
  Array.fill t.inits 0 (Array.length t.inits) (-1)

let cache_states t = t.n_states

let is_accepting (cfg : Config.sll) =
  match cfg.Config.s_ctx, cfg.Config.s_frames with
  | Config.Ctx_accept, [] -> true
  | _ -> false

let intern t configs =
  match Cfgs_tbl.find_opt t.state_ids configs with
  | Some sid -> sid
  | None ->
    let sid = t.n_states in
    if sid = Array.length t.infos then begin
      let bigger =
        Array.make (2 * sid) { configs = []; verdict = -2; accepting = [] }
      in
      Array.blit t.infos 0 bigger 0 sid;
      t.infos <- bigger
    end;
    let verdict =
      match Config.preds_of_sll configs with
      | [] -> -2
      | [ p ] -> p
      | _ -> -1
    in
    let accepting = Config.preds_of_sll (List.filter is_accepting configs) in
    t.infos.(sid) <- { configs; verdict; accepting };
    t.n_states <- sid + 1;
    Cfgs_tbl.add t.state_ids configs sid;
    sid

(* Closure with a per-configuration memo table (see [Core.Cache]'s
   counterpart for why this is sound). *)
let closure t configs =
  let rec go acc = function
    | [] -> Ok (List.sort_uniq Config.compare_sll (List.concat acc))
    | cfg :: rest -> (
      let result =
        match Cfg_tbl.find_opt t.closure_memo cfg with
        | Some r -> r
        | None ->
          let r = Sll.closure t.g t.anl [ cfg ] in
          Cfg_tbl.add t.closure_memo cfg r;
          r
      in
      match result with
      | Error e -> Error e
      | Ok stable -> go (stable :: acc) rest)
  in
  go [] configs

(* SLL prediction over the token array, with hash-consed DFA states and
   O(1) cached transitions.  Same semantics as [Core.Sll.predict]. *)
let sll_predict t x toks n pos0 =
  let init () =
    if t.inits.(x) >= 0 then Ok t.inits.(x)
    else
      match closure t (Sll.init_configs t.g x) with
      | Error e -> Error e
      | Ok configs ->
        let sid = intern t configs in
        t.inits.(x) <- sid;
        Ok sid
  in
  match init () with
  | Error e -> Core.Types.Error_pred e
  | Ok sid0 ->
    let rec walk sid pos =
      let info = t.infos.(sid) in
      if info.verdict = -2 then Core.Types.Reject_pred
      else if info.verdict >= 0 then Core.Types.Unique_pred info.verdict
      else if pos >= n then
        match info.accepting with
        | [] -> Core.Types.Reject_pred
        | [ p ] -> Core.Types.Unique_pred p
        | p :: _ -> Core.Types.Ambig_pred p
      else
        let a = toks.(pos).Token.term in
        let key = (sid * t.n_terms) + a in
        match Hashtbl.find_opt t.trans key with
        | Some sid' -> walk sid' (pos + 1)
        | None -> (
          match closure t (Sll.move info.configs a) with
          | Error e -> Core.Types.Error_pred e
          | Ok configs' ->
            let sid' = intern t configs' in
            Hashtbl.add t.trans key sid';
            walk sid' (pos + 1))
    in
    walk sid0 pos0

type frame = {
  label : nonterminal;  (* -1 for the bottom frame *)
  trees_rev : Tree.t list;
  suf : symbol list;
}

let rest_list toks n pos =
  let rec go i acc = if i < pos then acc else go (i - 1) (toks.(i) :: acc) in
  go (n - 1) []

let predict t toks n pos x conts =
  let fast = t.single.(x) in
  if fast >= 0 then Core.Types.Unique_pred fast
  else if Grammar.prods_of t.g x = [] then Core.Types.Reject_pred
  else
    let d =
      if pos < n then t.dispatch.((x * t.n_terms) + toks.(pos).Token.term)
      else t.dispatch_eof.(x)
    in
    if d >= 0 then Core.Types.Unique_pred d
    else if d = -2 then Core.Types.Reject_pred
    else
      match sll_predict t x toks n pos with
      | Core.Types.Ambig_pred _ ->
        (* Failover to exact LL prediction, as the verified parser does. *)
        Ll.predict t.g x (conts ()) (rest_list toks n pos)
      | verdict -> verdict

let parse t token_list =
  let toks = Array.of_list token_list in
  let n = Array.length toks in
  let g = t.g in
  let reject_at pos msg =
    Core.Parser.Reject
      (if pos < n then
         Printf.sprintf "%s at line %d, column %d" msg toks.(pos).Token.line
           toks.(pos).Token.col
       else msg ^ " at end of input")
  in
  let rec go top frames pos visited unique =
    match top.suf with
    | T a :: suf ->
      if pos < n && toks.(pos).Token.term = a then
        go
          { top with trees_rev = Tree.Leaf toks.(pos) :: top.trees_rev; suf }
          frames (pos + 1) Int_set.empty unique
      else
        reject_at pos
          (Printf.sprintf "expected '%s'" (Grammar.terminal_name g a))
    | NT x :: suf ->
      if Int_set.mem x visited then
        Core.Parser.Error (Core.Types.Left_recursive x)
      else begin
        let conts () = suf :: List.map (fun f -> f.suf) frames in
        match predict t toks n pos x conts with
        | Core.Types.Unique_pred ix ->
          go
            { label = x; trees_rev = []; suf = (Grammar.prod g ix).Grammar.rhs }
            ({ top with suf } :: frames)
            pos (Int_set.add x visited) unique
        | Core.Types.Ambig_pred ix ->
          go
            { label = x; trees_rev = []; suf = (Grammar.prod g ix).Grammar.rhs }
            ({ top with suf } :: frames)
            pos (Int_set.add x visited) false
        | Core.Types.Reject_pred ->
          reject_at pos
            (Printf.sprintf "no viable alternative for %s"
               (Grammar.nonterminal_name g x))
        | Core.Types.Error_pred e -> Core.Parser.Error e
      end
    | [] -> (
      match frames with
      | caller :: frames' ->
        let node = Tree.Node (top.label, List.rev top.trees_rev) in
        go
          { caller with trees_rev = node :: caller.trees_rev }
          frames' pos
          (Int_set.remove top.label visited)
          unique
      | [] -> (
        if pos < n then reject_at pos "parse finished with input remaining"
        else
          match top.trees_rev with
          | [ v ] ->
            if unique then Core.Parser.Unique v else Core.Parser.Ambig v
          | _ ->
            Core.Parser.Error
              (Core.Types.Invalid_state "malformed final configuration")))
  in
  go
    { label = -1; trees_rev = []; suf = [ NT (Grammar.start g) ] }
    [] 0 Int_set.empty true
