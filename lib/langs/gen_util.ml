(** Helpers for the deterministic synthetic-corpus generators.

    Every generator is driven by a [Random.State.t] seeded explicitly, so a
    given (seed, size) pair always produces the same file — benchmarks are
    reproducible run to run. *)

type t = {
  rand : Random.State.t;
  buf : Buffer.t;
  mutable budget : int;  (** rough remaining size, decremented by emission *)
}

let create ~seed ~size =
  { rand = Costar_grammar.Rng.of_seed seed;
    buf = Buffer.create (size * 8); budget = size }

let spend st n = st.budget <- st.budget - n
let exhausted st = st.budget <= 0

let int st n = Random.State.int st.rand n
let pick st arr = arr.(Random.State.int st.rand (Array.length arr))
let chance st p = Random.State.float st.rand 1.0 < p

let add st s =
  Buffer.add_string st.buf s;
  spend st 1

let addf st fmt = Printf.ksprintf (add st) fmt

let contents st = Buffer.contents st.buf

(** A random lowercase identifier of length 3-10. *)
let ident st =
  let len = 3 + int st 8 in
  String.init len (fun i ->
      if i = 0 then Char.chr (Char.code 'a' + int st 26)
      else
        let k = int st 36 in
        if k < 26 then Char.chr (Char.code 'a' + k)
        else Char.chr (Char.code '0' + k - 26))

(** A random word made of letters only. *)
let word st =
  let len = 2 + int st 8 in
  String.init len (fun _ -> Char.chr (Char.code 'a' + int st 26))

let number st =
  match int st 4 with
  | 0 -> string_of_int (int st 1000)
  | 1 -> Printf.sprintf "%d.%d" (int st 100) (int st 1000)
  | 2 -> Printf.sprintf "-%d" (int st 500)
  | _ -> Printf.sprintf "%d.%de%d" (int st 10) (int st 100) (int st 10)
