(** XML: grammar, lexer, and corpus generator.

    The [element] rule is the paper's §6.1 example verbatim: prediction must
    advance through an arbitrary number of attributes before it can tell an
    open tag from a self-closing one, so the grammar is not LL(k) for any k
    (experiment E7 demonstrates this with the LL(1) baseline).

    Deviations from ANTLR's XMLParser.g4: [content] is a flat repetition
    (our TEXT/SEA_WS tokens may alternate freely), and DTDs are out of
    scope. *)

open Costar_lex

let grammar_src =
  {|
    document  : prolog? misc2* element misc2* ;
    prolog    : XML_OPEN (attribute | SEA_WS)* SPECIAL_CLOSE ;
    misc2     : COMMENT | PI | SEA_WS ;
    element   : '<' NAME (attribute | SEA_WS)* '>' content '</' NAME '>'
              | '<' NAME (attribute | SEA_WS)* '/>' ;
    attribute : NAME '=' STRING ;
    content   : (element | reference | CDATA | PI | COMMENT | chardata)* ;
    chardata  : TEXT | SEA_WS | NAME ;
    reference : ENTITY_REF | CHAR_REF ;
  |}

let grammar =
  lazy
    (match Costar_ebnf.Parse.grammar_of_string ~start:"document" grammar_src with
    | Ok g -> g
    | Error msg -> failwith ("Xml.grammar: " ^ msg))

let scanner =
  lazy
    (let open Regex in
     let name_start = alt [ letter; set "_:" ] in
     let name_char = alt [ word_char; set ":.-" ] in
     (* Without lexer modes, TEXT must avoid every character that is
        structural inside tags; character runs that happen to be well-formed
        names lex as NAME, which [chardata] also accepts. *)
     let text_char = none_of "<&>=\"'?/ \t\r\n" in
     Scanner.make
       [
         Scanner.rule "XML_OPEN" (str "<?xml");
         Scanner.rule "SPECIAL_CLOSE" (str "?>");
         Scanner.rule "COMMENT"
           (seq [ str "<!--"; star (alt [ none_of "-"; seq [ chr '-'; none_of "-" ] ]); str "-->" ]);
         Scanner.rule "CDATA"
           (seq [ str "<![CDATA["; star (none_of "]"); str "]]>" ]);
         (* Processing-instruction targets start with an uppercase letter in
            this subset, so "<?xml" can only be the declaration open. *)
         Scanner.rule "PI"
           (seq [ str "<?"; upper; star name_char; star (none_of "?"); str "?>" ]);
         Scanner.rule "/>" (str "/>");
         Scanner.rule "</" (str "</");
         Scanner.rule "<" (chr '<');
         Scanner.rule ">" (chr '>');
         Scanner.rule "=" (chr '=');
         Scanner.rule "STRING"
           (alt
              [
                seq [ chr '"'; star (none_of "\"<"); chr '"' ];
                seq [ chr '\''; star (none_of "'<"); chr '\'' ];
              ]);
         Scanner.rule "ENTITY_REF" (seq [ chr '&'; plus letter; chr ';' ]);
         Scanner.rule "CHAR_REF" (seq [ str "&#"; plus digit; chr ';' ]);
         Scanner.rule "NAME" (seq [ name_start; star name_char ]);
         Scanner.rule "SEA_WS" (plus (set " \t\r\n"));
         Scanner.rule "TEXT" (plus text_char);
       ])

let tokenize input =
  match Scanner.tokenize (Lazy.force scanner) (Lazy.force grammar) input with
  | Ok toks -> Ok toks
  | Error e -> Error (Fmt.str "%a" Scanner.pp_error e)

let compiled =
  lazy
    (match Scanner.compile (Lazy.force scanner) (Lazy.force grammar) with
    | Ok c -> c
    | Error msg -> failwith ("Xml.compiled: " ^ msg))

let tokenize_buf input =
  match Scanner.scan_buf (Lazy.force compiled) input with
  | Ok buf -> Ok buf
  | Error e -> Error (Fmt.str "%a" Scanner.pp_error e)

(* --- Generator --------------------------------------------------------- *)

let gen_attrs st =
  let n = Gen_util.int st 4 in
  for _ = 1 to n do
    Gen_util.addf st " %s=\"%s\"" (Gen_util.word st) (Gen_util.word st)
  done

let rec gen_element st depth =
  let tag = Gen_util.word st in
  if Gen_util.exhausted st || depth > 6 || Gen_util.chance st 0.2 then begin
    Gen_util.addf st "<%s" tag;
    gen_attrs st;
    Gen_util.add st "/>"
  end
  else begin
    Gen_util.addf st "<%s" tag;
    gen_attrs st;
    Gen_util.add st ">";
    let kids = 1 + Gen_util.int st 4 in
    for _ = 1 to kids do
      match Gen_util.int st 6 with
      | 0 -> Gen_util.addf st "%s %s" (Gen_util.word st) (Gen_util.word st)
      | 1 -> Gen_util.addf st "<!-- %s -->" (Gen_util.word st)
      | 2 -> Gen_util.addf st "&amp;"
      | _ -> gen_element st (depth + 1)
    done;
    Gen_util.addf st "</%s>" tag
  end

let generate ~seed ~size =
  let st = Gen_util.create ~seed ~size in
  Gen_util.add st "<?xml version=\"1.0\"?>\n";
  Gen_util.add st "<root>";
  while not (Gen_util.exhausted st) do
    gen_element st 0;
    Gen_util.add st "\n"
  done;
  Gen_util.add st "</root>\n";
  Gen_util.contents st

let lang : Lang.t =
  {
    Lang.name = "xml";
    grammar;
    tokenize;
    tokenize_buf;
    generate;
    scanner = Some scanner;
  }
