(** JSON: grammar, lexer, and corpus generator.

    The grammar is the classic ANTLR JSON grammar; desugaring it yields
    exactly the Fig. 8 statistics from the paper (11 terminals, 7
    nonterminals, 17 productions). *)

open Costar_lex

let grammar_src =
  {|
    json  : value ;
    value : obj | arr | STRING | NUMBER | 'true' | 'false' | 'null' ;
    obj   : '{' pair (',' pair)* '}' | '{' '}' ;
    pair  : STRING ':' value ;
    arr   : '[' value (',' value)* ']' | '[' ']' ;
  |}

let grammar =
  lazy
    (match Costar_ebnf.Parse.grammar_of_string ~start:"json" grammar_src with
    | Ok g -> g
    | Error msg -> failwith ("Json.grammar: " ^ msg))

let scanner =
  lazy
    (let open Regex in
     let string_re =
       seq [ chr '"'; star (alt [ seq [ chr '\\'; any ]; none_of "\"\\" ]); chr '"' ]
     in
     let number_re =
       seq
         [
           opt (chr '-');
           alt [ chr '0'; seq [ range '1' '9'; star digit ] ];
           opt (seq [ chr '.'; plus digit ]);
           opt (seq [ set "eE"; opt (set "+-"); plus digit ]);
         ]
     in
     Scanner.make
       [
         Scanner.rule "STRING" string_re;
         Scanner.rule "NUMBER" number_re;
         Scanner.rule "true" (str "true");
         Scanner.rule "false" (str "false");
         Scanner.rule "null" (str "null");
         Scanner.rule "{" (chr '{');
         Scanner.rule "}" (chr '}');
         Scanner.rule "[" (chr '[');
         Scanner.rule "]" (chr ']');
         Scanner.rule "," (chr ',');
         Scanner.rule ":" (chr ':');
         Scanner.rule "WS" ~skip:true (plus (set " \t\r\n"));
       ])

let tokenize input =
  match Scanner.tokenize (Lazy.force scanner) (Lazy.force grammar) input with
  | Ok toks -> Ok toks
  | Error e -> Error (Fmt.str "%a" Scanner.pp_error e)

let compiled =
  lazy
    (match Scanner.compile (Lazy.force scanner) (Lazy.force grammar) with
    | Ok c -> c
    | Error msg -> failwith ("Json.compiled: " ^ msg))

let tokenize_buf input =
  match Scanner.scan_buf (Lazy.force compiled) input with
  | Ok buf -> Ok buf
  | Error e -> Error (Fmt.str "%a" Scanner.pp_error e)

(* --- Generator --------------------------------------------------------- *)

let gen_string st =
  Gen_util.addf st "\"%s\"" (Gen_util.word st)

let rec gen_value st depth =
  if Gen_util.exhausted st || depth > 8 then
    (* Leaf values once the budget is gone. *)
    match Gen_util.int st 3 with
    | 0 -> gen_string st
    | 1 -> Gen_util.add st (Gen_util.number st)
    | _ -> Gen_util.add st (Gen_util.pick st [| "true"; "false"; "null" |])
  else
    match Gen_util.int st 8 with
    | 0 | 1 -> gen_object st depth
    | 2 | 3 -> gen_array st depth
    | 4 -> gen_string st
    | 5 -> Gen_util.add st (Gen_util.number st)
    | _ -> Gen_util.add st (Gen_util.pick st [| "true"; "false"; "null" |])

and gen_object st depth =
  let n = Gen_util.int st 5 in
  Gen_util.add st "{";
  for i = 0 to n - 1 do
    if i > 0 then Gen_util.add st ", ";
    gen_string st;
    Gen_util.add st ": ";
    gen_value st (depth + 1)
  done;
  Gen_util.add st "}"

and gen_array st depth =
  let n = Gen_util.int st 6 in
  Gen_util.add st "[";
  for i = 0 to n - 1 do
    if i > 0 then Gen_util.add st ", ";
    gen_value st (depth + 1)
  done;
  Gen_util.add st "]"

let generate ~seed ~size =
  let st = Gen_util.create ~seed ~size in
  (* A top-level array filled until the budget runs out gives files whose
     token count scales linearly with [size]. *)
  Gen_util.add st "[";
  let first = ref true in
  while not (Gen_util.exhausted st) do
    if not !first then Gen_util.add st ",\n";
    first := false;
    gen_value st 0
  done;
  Gen_util.add st "]\n";
  Gen_util.contents st

let lang : Lang.t =
  {
    Lang.name = "json";
    grammar;
    tokenize;
    tokenize_buf;
    generate;
    scanner = Some scanner;
  }
