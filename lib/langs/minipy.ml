(** MiniPython: a substantial Python 3 subset — grammar, lexer with
    INDENT/DEDENT synthesis, and corpus generator.

    This is the stand-in for the paper's Python 3 benchmark (its largest
    grammar).  The statement and expression grammars follow CPython's
    Grammar/Grammar layering (test / or_test / ... / power / atom with
    trailers); indentation-based block structure is produced by
    {!Indenter}.  Out of scope: async, triple-quoted
    strings, global/nonlocal distinctions, and the walrus operator. *)

open Costar_lex

let grammar_src =
  {|
    file_input : (NEWLINE | stmt)* ;

    stmt        : simple_stmt | compound_stmt ;
    decorator   : '@' dotted_name ('(' arglist? ')')? NEWLINE ;
    decorated   : decorator+ (funcdef | classdef) ;
    simple_stmt : small_stmt (';' small_stmt)* ';'? NEWLINE ;
    small_stmt  : expr_stmt | del_stmt | pass_stmt | flow_stmt
                | import_stmt | global_stmt | assert_stmt ;

    expr_stmt   : testlist (augassign testlist | ('=' testlist)*) ;
    augassign   : '+=' | '-=' | '*=' | '/=' | '%=' | '//=' | '**=' ;
    del_stmt    : 'del' exprlist ;
    pass_stmt   : 'pass' ;
    flow_stmt   : 'break' | 'continue' | return_stmt | raise_stmt | yield_stmt ;
    yield_stmt  : yield_expr ;
    yield_expr  : 'yield' ('from' test | testlist)? ;
    return_stmt : 'return' testlist? ;
    raise_stmt  : 'raise' (test ('from' test)?)? ;

    import_stmt     : 'import' dotted_as_names
                    | 'from' dotted_name 'import' ('*' | import_as_names) ;
    dotted_as_names : dotted_as_name (',' dotted_as_name)* ;
    dotted_as_name  : dotted_name ('as' NAME)? ;
    dotted_name     : NAME ('.' NAME)* ;
    import_as_names : import_as_name (',' import_as_name)* ;
    import_as_name  : NAME ('as' NAME)? ;
    global_stmt     : 'global' NAME (',' NAME)* ;
    assert_stmt     : 'assert' test (',' test)? ;

    compound_stmt : if_stmt | while_stmt | for_stmt | try_stmt | with_stmt
                  | funcdef | classdef | decorated ;
    if_stmt    : 'if' test ':' suite ('elif' test ':' suite)* ('else' ':' suite)? ;
    while_stmt : 'while' test ':' suite ('else' ':' suite)? ;
    for_stmt   : 'for' exprlist 'in' testlist ':' suite ('else' ':' suite)? ;
    try_stmt   : 'try' ':' suite try_rest ;
    try_rest   : (except_clause ':' suite)+
                   ('else' ':' suite)? ('finally' ':' suite)?
               | 'finally' ':' suite ;
    except_clause : 'except' (test ('as' NAME)?)? ;
    with_stmt  : 'with' with_item (',' with_item)* ':' suite ;
    with_item  : test ('as' expr)? ;
    funcdef    : 'def' NAME parameters ('->' test)? ':' suite ;
    parameters : '(' paramlist? ')' ;
    paramlist  : param (',' param)* (',' star_param)? | star_param ;
    star_param : '*' NAME (',' '**' NAME)? | '**' NAME ;
    param      : NAME (':' test)? ('=' test)? ;
    classdef   : 'class' NAME ('(' arglist? ')')? ':' suite ;
    suite      : simple_stmt | NEWLINE INDENT stmt+ DEDENT ;

    test       : or_test ('if' or_test 'else' test)? | lambdef ;
    lambdef    : 'lambda' varargslist? ':' test ;
    varargslist : NAME (',' NAME)* ;
    or_test    : and_test ('or' and_test)* ;
    and_test   : not_test ('and' not_test)* ;
    not_test   : 'not' not_test | comparison ;
    comparison : expr (comp_op expr)* ;
    comp_op    : '<' | '>' | '==' | '>=' | '<=' | '!=' | 'in'
               | 'not' 'in' | 'is' | 'is' 'not' ;
    expr       : xor_expr ('|' xor_expr)* ;
    xor_expr   : and_expr ('^' and_expr)* ;
    and_expr   : shift_expr ('&' shift_expr)* ;
    shift_expr : arith_expr (('<<' | '>>') arith_expr)* ;
    arith_expr : term (('+' | '-') term)* ;
    term       : factor (('*' | '/' | '%' | '//') factor)* ;
    factor     : ('+' | '-' | '~') factor | power ;
    power      : atom_expr ('**' factor)? ;
    atom_expr  : atom trailer* ;
    atom       : '(' (yield_expr | testlist_comp)? ')'
               | '[' testlist_comp? ']'
               | '{' dictorsetmaker? '}'
               | NAME | NUMBER | STRING+ | 'None' | 'True' | 'False'
               | '...' ;
    testlist_comp : test (comp_for | (',' test)* ','?) ;
    comp_for   : 'for' exprlist 'in' or_test comp_iter? ;
    comp_iter  : comp_for | comp_if ;
    comp_if    : 'if' or_test comp_iter? ;
    trailer    : '(' arglist? ')' | '[' subscriptlist ']' | '.' NAME ;
    subscriptlist : subscript (',' subscript)* ;
    subscript  : test (':' test?)? | ':' test? ;
    arglist    : argument (',' argument)* ','? ;
    argument   : test (comp_for | '=' test)? | '*' test | '**' test ;
    exprlist   : expr (',' expr)* ','? ;
    testlist   : test (',' test)* ','? ;
    dictorsetmaker : test ':' test (comp_for | (',' test ':' test)* ','?)
                   | test (comp_for | (',' test)* ','?)
                   | '**' test (',' test ':' test)* ','? ;
  |}

let grammar =
  lazy
    (match
       Costar_ebnf.Parse.grammar_of_string ~start:"file_input"
         ~extra_terminals:[ "NEWLINE"; "INDENT"; "DEDENT" ]
         grammar_src
     with
    | Ok g -> g
    | Error msg -> failwith ("Minipy.grammar: " ^ msg))

let keywords =
  [
    "del"; "pass"; "break"; "continue"; "return"; "raise"; "import"; "from";
    "as"; "global"; "assert"; "if"; "elif"; "else"; "while"; "for"; "in";
    "try"; "except"; "finally"; "with"; "def"; "class"; "lambda"; "yield"; "or";
    "and"; "not"; "is"; "None"; "True"; "False";
  ]

let scanner =
  lazy
    (let open Regex in
     let number_re =
       alt
         [
           seq [ plus digit; opt (seq [ chr '.'; star digit ]) ];
           seq [ chr '.'; plus digit ];
         ]
     in
     let string_re =
       alt
         [
           seq [ chr '"'; star (alt [ seq [ chr '\\'; any ]; none_of "\"\\\n" ]); chr '"' ];
           seq [ chr '\''; star (alt [ seq [ chr '\\'; any ]; none_of "'\\\n" ]); chr '\'' ];
         ]
     in
     let kw_rules = List.map (fun k -> Scanner.rule k (str k)) keywords in
     let op_rules =
       List.map
         (fun op -> Scanner.rule op (str op))
         [
           "**="; "//="; "+="; "-="; "*="; "/="; "%="; "=="; "!="; ">="; "<=";
           "<<"; ">>"; "**"; "//"; "->"; "..."; "("; ")"; "["; "]"; "{"; "}";
           ","; ":"; "."; ";"; "="; "+"; "-"; "*"; "/"; "%"; "<"; ">"; "|";
           "^"; "&"; "~"; "@";
         ]
     in
     Scanner.make
       (kw_rules
       @ [
           Scanner.rule "NAME" (seq [ alt [ letter; chr '_' ]; star word_char ]);
           Scanner.rule "NUMBER" number_re;
           Scanner.rule "STRING" string_re;
         ]
       @ op_rules
       @ [
           Scanner.rule "NEWLINE" (seq [ opt (chr '\r'); chr '\n' ]);
           Scanner.rule "LINE_JOIN" ~skip:true (seq [ chr '\\'; opt (chr '\r'); chr '\n' ]);
           Scanner.rule "COMMENT" ~skip:true (seq [ chr '#'; star (none_of "\n") ]);
           Scanner.rule "WS" ~skip:true (plus (set " \t"));
         ]))

let tokenize input =
  let g = Lazy.force grammar in
  match Scanner.scan (Lazy.force scanner) input with
  | Error e -> Error (Fmt.str "%a" Scanner.pp_error e)
  | Ok raws -> (
    match Indenter.run raws with
    | Error msg -> Error msg
    | Ok logical -> (
      let module G = Costar_grammar.Grammar in
      let module Tk = Costar_grammar.Token in
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | (r : Scanner.raw) :: rest -> (
          match G.terminal_of_name g r.kind with
          | Some term ->
            resolve (Tk.make ~line:r.line ~col:r.col term r.lexeme :: acc) rest
          | None ->
            Error
              (Printf.sprintf "line %d: unknown token kind %s" r.line r.kind))
      in
      resolve [] logical))

let compiled =
  lazy
    (match Scanner.compile (Lazy.force scanner) (Lazy.force grammar) with
    | Ok c -> c
    | Error msg -> failwith ("Minipy.compiled: " ^ msg))

let indenter_ids = lazy (Indenter.ids_of_grammar (Lazy.force grammar))

let tokenize_buf input =
  match Scanner.scan_buf (Lazy.force compiled) input with
  | Error e -> Error (Fmt.str "%a" Scanner.pp_error e)
  | Ok buf -> Indenter.run_buf (Lazy.force indenter_ids) buf

(* --- Generator --------------------------------------------------------- *)

let names = [| "x"; "y"; "z"; "count"; "total"; "items"; "value"; "result"; "data"; "acc" |]
let funcs = [| "process"; "compute"; "update"; "handle"; "merge"; "scan" |]

let rec gen_atom st depth =
  match Gen_util.int st 10 with
  | 0 | 1 | 2 -> Gen_util.add st (Gen_util.pick st names)
  | 3 | 4 -> Gen_util.addf st "%d" (Gen_util.int st 100)
  | 5 -> Gen_util.addf st "\"%s\"" (Gen_util.word st)
  | 6 -> Gen_util.add st (Gen_util.pick st [| "None"; "True"; "False" |])
  | 7 when depth < 3 ->
    Gen_util.add st "[";
    let n = Gen_util.int st 4 in
    for i = 1 to n do
      if i > 1 then Gen_util.add st ", ";
      gen_expr st (depth + 1)
    done;
    Gen_util.add st "]"
  | 8 when depth < 3 ->
    Gen_util.addf st "%s(" (Gen_util.pick st funcs);
    let n = Gen_util.int st 3 in
    for i = 1 to n do
      if i > 1 then Gen_util.add st ", ";
      gen_expr st (depth + 1)
    done;
    Gen_util.add st ")"
  | _ ->
    Gen_util.addf st "%s.%s" (Gen_util.pick st names)
      (Gen_util.pick st [| "size"; "next"; "items"; "get" |])

and gen_expr st depth =
  if depth > 4 then gen_atom st depth
  else
    match Gen_util.int st 8 with
    | 0 | 1 | 2 ->
      gen_atom st depth;
      Gen_util.addf st " %s " (Gen_util.pick st [| "+"; "-"; "*"; "//"; "%" |]);
      gen_atom st (depth + 1)
    | 3 ->
      gen_atom st depth;
      Gen_util.addf st " %s "
        (Gen_util.pick st [| "<"; ">"; "=="; "!="; "<="; ">=" |]);
      gen_atom st (depth + 1)
    | 4 ->
      gen_expr st (depth + 1);
      Gen_util.addf st " %s " (Gen_util.pick st [| "and"; "or" |]);
      gen_expr st (depth + 1)
    | 5 ->
      Gen_util.add st "not ";
      gen_expr st (depth + 1)
    | 6 ->
      gen_atom st depth;
      Gen_util.add st "[";
      gen_atom st (depth + 1);
      Gen_util.add st "]"
    | _ -> gen_atom st depth

let indent st level =
  Gen_util.add st (String.make (4 * level) ' ')

let rec gen_stmt st level depth =
  indent st level;
  match Gen_util.int st 14 with
  | 0 | 1 | 2 | 3 ->
    Gen_util.addf st "%s = " (Gen_util.pick st names);
    gen_expr st 0;
    Gen_util.add st "\n"
  | 4 ->
    Gen_util.addf st "%s %s " (Gen_util.pick st names)
      (Gen_util.pick st [| "+="; "-="; "*=" |]);
    gen_expr st 0;
    Gen_util.add st "\n"
  | 5 ->
    Gen_util.addf st "%s(" (Gen_util.pick st funcs);
    gen_expr st 0;
    Gen_util.add st ")\n"
  | 6 when depth < 3 ->
    Gen_util.add st "if ";
    gen_expr st 0;
    Gen_util.add st ":\n";
    gen_block st (level + 1) (depth + 1);
    if Gen_util.chance st 0.4 then begin
      indent st level;
      Gen_util.add st "else:\n";
      gen_block st (level + 1) (depth + 1)
    end
  | 7 when depth < 3 ->
    Gen_util.addf st "for %s in " (Gen_util.pick st names);
    gen_atom st 0;
    Gen_util.add st ":\n";
    gen_block st (level + 1) (depth + 1)
  | 8 when depth < 3 ->
    Gen_util.add st "while ";
    gen_expr st 0;
    Gen_util.add st ":\n";
    gen_block st (level + 1) (depth + 1)
  | 9 when depth < 2 ->
    Gen_util.add st "try:\n";
    gen_block st (level + 1) (depth + 1);
    indent st level;
    Gen_util.add st "except ValueError as e:\n";
    gen_block st (level + 1) (depth + 1)
  | 10 ->
    Gen_util.add st "return ";
    gen_expr st 0;
    Gen_util.add st "\n"
  | 11 ->
    Gen_util.add st "assert ";
    gen_expr st 0;
    Gen_util.add st "\n"
  | 12 when depth < 3 ->
    Gen_util.addf st "with %s(" (Gen_util.pick st funcs);
    gen_atom st 0;
    Gen_util.addf st ") as %s:\n" (Gen_util.pick st names);
    gen_block st (level + 1) (depth + 1)
  | _ -> Gen_util.add st "pass\n"

and gen_block st level depth =
  let n = 1 + Gen_util.int st 3 in
  for _ = 1 to n do
    gen_stmt st level depth
  done

let gen_funcdef st =
  if Gen_util.chance st 0.2 then
    Gen_util.addf st "@%s\n" (Gen_util.pick st [| "cached"; "staticmethod"; "app.route" |]);
  Gen_util.addf st "def %s_%s(" (Gen_util.pick st funcs) (Gen_util.word st);
  let n = Gen_util.int st 4 in
  for i = 1 to n do
    if i > 1 then Gen_util.add st ", ";
    Gen_util.add st (Gen_util.pick st names);
    if Gen_util.chance st 0.15 then Gen_util.addf st "=%d" (Gen_util.int st 10)
  done;
  if Gen_util.chance st 0.15 then begin
    if n > 0 then Gen_util.add st ", ";
    Gen_util.add st "*args, **kwargs"
  end;
  Gen_util.add st ")";
  if Gen_util.chance st 0.1 then Gen_util.add st " -> None";
  Gen_util.add st ":\n";
  if Gen_util.chance st 0.15 then begin
    indent st 1;
    Gen_util.add st "yield ";
    gen_expr st 0;
    Gen_util.add st "\n"
  end;
  gen_block st 1 0;
  Gen_util.add st "\n"

let gen_classdef st =
  Gen_util.addf st "class %s:\n" (String.capitalize_ascii (Gen_util.word st));
  let n = 1 + Gen_util.int st 3 in
  for _ = 1 to n do
    indent st 1;
    Gen_util.addf st "def %s(self):\n" (Gen_util.pick st funcs);
    gen_block st 2 0
  done;
  Gen_util.add st "\n"

let generate ~seed ~size =
  let st = Gen_util.create ~seed ~size in
  Gen_util.add st "import os\nfrom sys import argv as args\n\n";
  while not (Gen_util.exhausted st) do
    match Gen_util.int st 5 with
    | 0 -> gen_classdef st
    | 1 | 2 -> gen_funcdef st
    | _ -> gen_stmt st 0 0
  done;
  Gen_util.contents st

let lang : Lang.t =
  {
    Lang.name = "minipy";
    grammar;
    tokenize;
    tokenize_buf;
    generate;
    scanner = Some scanner;
  }
