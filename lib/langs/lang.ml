(** Common interface for the benchmark languages (paper, §6.1).

    Each language packages a desugared BNF grammar, a DFA scanner, a
    tokenizer (scanner plus any post-passes, e.g. Python's indenter), and a
    deterministic synthetic-corpus generator standing in for the paper's
    data sets (see DESIGN.md, substitutions table). *)

open Costar_grammar

type t = {
  name : string;
  grammar : Grammar.t Lazy.t;
  tokenize : string -> (Token.t list, string) result;
  tokenize_buf : string -> (Token_buf.t, string) result;
      (** The zero-copy pipeline: compiled scanner straight into a
          struct-of-arrays token buffer (plus any post-passes).  Must agree
          with [tokenize] token-for-token — pinned by the differential
          tests. *)
  generate : seed:int -> size:int -> string;
      (** [generate ~seed ~size] produces a source file; [size] roughly
          scales the number of syntactic items. *)
  scanner : Costar_lex.Scanner.t Lazy.t option;
      (** The underlying DFA scanner, when the tokenizer is a plain scanner
          (possibly with post-passes, e.g. Python's indenter — synthesized
          terminals like INDENT/DEDENT never appear in it).  Coverage
          tooling uses it to enumerate and invert lexer-DFA transitions. *)
}

let grammar l = Lazy.force l.grammar
let tokenize l = l.tokenize
let tokenize_buf l = l.tokenize_buf
let generate l = l.generate
let scanner l = Option.map Lazy.force l.scanner

(** Tokenize, failing loudly — for tests and examples where the input is
    known to be lexable. *)
let tokenize_exn l input =
  match l.tokenize input with
  | Ok toks -> toks
  | Error msg -> invalid_arg (Printf.sprintf "%s lexer: %s" l.name msg)

(** Buffer pipeline, failing loudly. *)
let tokenize_buf_exn l input =
  match l.tokenize_buf input with
  | Ok buf -> buf
  | Error msg -> invalid_arg (Printf.sprintf "%s lexer: %s" l.name msg)
