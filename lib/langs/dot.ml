(** Graphviz DOT: grammar, lexer, and corpus generator.

    The grammar follows the official DOT language specification (as used in
    the ANTLR evaluation the paper reuses data from).  The [stmt] rule is a
    good ALL(star) stressor: a node statement, an edge statement, and an
    attribute assignment all begin with an [id], and edge statements that
    begin with a subgraph require prediction to scan through the entire
    bracketed block before seeing the edge operator. *)

open Costar_lex

let grammar_src =
  {|
    graph     : 'strict'? ('graph' | 'digraph') id2? '{' stmt_list '}' ;
    stmt_list : (stmt ';'?)* ;
    stmt      : node_stmt
              | edge_stmt
              | attr_stmt
              | id2 '=' id2
              | subgraph ;
    attr_stmt : ('graph' | 'node' | 'edge') attr_list ;
    attr_list : ('[' a_list? ']')+ ;
    a_list    : (id2 ('=' id2)? ','?)+ ;
    edge_stmt : (node_id | subgraph) edge_rhs attr_list? ;
    edge_rhs  : (edgeop (node_id | subgraph))+ ;
    edgeop    : '->' | '--' ;
    node_stmt : node_id attr_list? ;
    node_id   : id2 port? ;
    port      : ':' id2 (':' id2)? ;
    subgraph  : ('subgraph' id2?)? '{' stmt_list '}' ;
    id2       : ID | STRING | NUMBER ;
  |}

let grammar =
  lazy
    (match Costar_ebnf.Parse.grammar_of_string ~start:"graph" grammar_src with
    | Ok g -> g
    | Error msg -> failwith ("Dot.grammar: " ^ msg))

let scanner =
  lazy
    (let open Regex in
     Scanner.make
       [
         Scanner.rule "strict" (str "strict");
         Scanner.rule "graph" (str "graph");
         Scanner.rule "digraph" (str "digraph");
         Scanner.rule "node" (str "node");
         Scanner.rule "edge" (str "edge");
         Scanner.rule "subgraph" (str "subgraph");
         Scanner.rule "->" (str "->");
         Scanner.rule "--" (str "--");
         Scanner.rule "{" (chr '{');
         Scanner.rule "}" (chr '}');
         Scanner.rule "[" (chr '[');
         Scanner.rule "]" (chr ']');
         Scanner.rule ";" (chr ';');
         Scanner.rule "," (chr ',');
         Scanner.rule "=" (chr '=');
         Scanner.rule ":" (chr ':');
         Scanner.rule "ID" (seq [ alt [ letter; chr '_' ]; star word_char ]);
         Scanner.rule "NUMBER"
           (seq [ opt (chr '-'); plus digit; opt (seq [ chr '.'; plus digit ]) ]);
         Scanner.rule "STRING" (seq [ chr '"'; star (none_of "\""); chr '"' ]);
         Scanner.rule "COMMENT" ~skip:true
           (seq [ str "//"; star (none_of "\n") ]);
         Scanner.rule "WS" ~skip:true (plus (set " \t\r\n"));
       ])

let tokenize input =
  match Scanner.tokenize (Lazy.force scanner) (Lazy.force grammar) input with
  | Ok toks -> Ok toks
  | Error e -> Error (Fmt.str "%a" Scanner.pp_error e)

let compiled =
  lazy
    (match Scanner.compile (Lazy.force scanner) (Lazy.force grammar) with
    | Ok c -> c
    | Error msg -> failwith ("Dot.compiled: " ^ msg))

let tokenize_buf input =
  match Scanner.scan_buf (Lazy.force compiled) input with
  | Ok buf -> Ok buf
  | Error e -> Error (Fmt.str "%a" Scanner.pp_error e)

(* --- Generator --------------------------------------------------------- *)

let gen_attr_list st =
  Gen_util.add st " [";
  let n = 1 + Gen_util.int st 3 in
  for i = 1 to n do
    if i > 1 then Gen_util.add st ", ";
    Gen_util.addf st "%s=\"%s\"" (Gen_util.pick st [| "color"; "label"; "shape"; "weight" |]) (Gen_util.word st)
  done;
  Gen_util.add st "]"

let gen_node_id st n_nodes =
  Gen_util.addf st "n%d" (Gen_util.int st n_nodes);
  if Gen_util.chance st 0.1 then
    Gen_util.addf st ":%s" (Gen_util.pick st [| "n"; "s"; "e"; "w" |])

let rec gen_stmt st n_nodes depth =
  (* Statement-initial subgraphs force the parser to scan the whole block
     to distinguish a subgraph statement from a subgraph-led edge, so keep
     them rare, as in real-world DOT files. *)
  match Gen_util.int st 20 with
  | 0 | 1 | 2 | 10 | 11 | 12 | 13 ->
    (* node statement *)
    Gen_util.add st "  ";
    gen_node_id st n_nodes;
    if Gen_util.chance st 0.5 then gen_attr_list st;
    Gen_util.add st ";\n"
  | 3 | 4 | 5 | 6 | 14 | 15 | 16 | 17 | 18 ->
    (* edge chain *)
    Gen_util.add st "  ";
    gen_node_id st n_nodes;
    let hops = 1 + Gen_util.int st 3 in
    for _ = 1 to hops do
      Gen_util.add st " -> ";
      gen_node_id st n_nodes
    done;
    if Gen_util.chance st 0.3 then gen_attr_list st;
    Gen_util.add st ";\n"
  | 7 | 9 ->
    (* graph attribute *)
    Gen_util.addf st "  %s" (Gen_util.pick st [| "graph"; "node"; "edge" |]);
    gen_attr_list st;
    Gen_util.add st ";\n"
  | 8 -> Gen_util.addf st "  %s=\"%s\";\n" (Gen_util.word st) (Gen_util.word st)
  | _ ->
    if depth < 2 then begin
      Gen_util.addf st "  subgraph cluster_%s {\n" (Gen_util.word st);
      let n = 1 + Gen_util.int st 4 in
      for _ = 1 to n do
        gen_stmt st n_nodes (depth + 1)
      done;
      Gen_util.add st "  }\n"
    end
    else begin
      Gen_util.add st "  ";
      gen_node_id st n_nodes;
      Gen_util.add st ";\n"
    end

let generate ~seed ~size =
  let st = Gen_util.create ~seed ~size in
  let n_nodes = max 4 (size / 4) in
  Gen_util.add st "digraph generated {\n";
  while not (Gen_util.exhausted st) do
    gen_stmt st n_nodes 0
  done;
  Gen_util.add st "}\n";
  Gen_util.contents st

let lang : Lang.t =
  {
    Lang.name = "dot";
    grammar;
    tokenize;
    tokenize_buf;
    generate;
    scanner = Some scanner;
  }
