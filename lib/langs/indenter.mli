(** Python-style indentation pre-pass.

    Turns a flat scanner token stream into a logical-line stream with
    synthesized [INDENT] and [DEDENT] tokens, implementing the interesting
    parts of Python's tokenizer algorithm:

    - newlines inside parentheses/brackets/braces are implicit line joins
      and are dropped;
    - blank lines (and comment-only lines, whose comments the scanner has
      already skipped) produce no NEWLINE;
    - at the start of each logical line, a column increase pushes the indent
      stack and emits [INDENT]; a decrease pops and emits one [DEDENT] per
      level, and must land exactly on an enclosing level;
    - end of input closes any open logical line and emits the remaining
      [DEDENT]s. *)

(** [run raws] consumes the raw scanner tokens (which must include one raw
    per physical newline, kind ["NEWLINE"]) and yields the logical stream.
    Fails with a message on inconsistent dedents. *)
val run :
  Costar_lex.Scanner.raw list -> (Costar_lex.Scanner.raw list, string) result

(** Terminal ids the buffer pass needs, resolved against the grammar once
    per language (NEWLINE/INDENT/DEDENT plus whichever bracket terminals
    the grammar actually has).  Raises [Invalid_argument] if the grammar
    lacks one of the three structural terminals. *)
type ids

val ids_of_grammar : Costar_grammar.Grammar.t -> ids

(** [run_buf ids buf] is {!run} over the struct-of-arrays token buffer:
    same algorithm, but columns come from the buffer's shared newline
    table and synthesized tokens are zero-width entries ([start = stop])
    anchored at the start of the line they open or close (end-of-input
    synths at [String.length input]). *)
val run_buf :
  ids ->
  Costar_grammar.Token_buf.t ->
  (Costar_grammar.Token_buf.t, string) result
