open Costar_lex
module G = Costar_grammar.Grammar
module Token_buf = Costar_grammar.Token_buf
module Lines = Costar_grammar.Lines

let openers = [ "("; "["; "{" ]
let closers = [ ")"; "]"; "}" ]

let synth kind line col = { Scanner.kind; lexeme = ""; line; col }

let run raws =
  let out = ref [] in
  let emit r = out := r :: !out in
  let indents = ref [ 0 ] in
  let depth = ref 0 in
  let line_has_content = ref false in
  let at_line_start = ref true in
  let error = ref None in
  let handle_line_start (tok : Scanner.raw) =
    let col = tok.Scanner.col in
    (match !indents with
    | top :: _ when col > top ->
      indents := col :: !indents;
      emit (synth "INDENT" tok.line 0)
    | _ ->
      let rec dedent () =
        match !indents with
        | top :: rest when col < top ->
          indents := rest;
          emit (synth "DEDENT" tok.line 0);
          dedent ()
        | top :: _ ->
          if col <> top then
            error :=
              Some
                (Printf.sprintf
                   "line %d: unindent does not match any outer level" tok.line)
        | [] -> assert false
      in
      dedent ());
    at_line_start := false
  in
  List.iter
    (fun (tok : Scanner.raw) ->
      if !error = None then
        if tok.Scanner.kind = "NEWLINE" then begin
          if !depth = 0 && !line_has_content then begin
            emit { tok with lexeme = "" };
            line_has_content := false;
            at_line_start := true
          end
          (* Blank line or implicit join: drop the newline. *)
        end
        else begin
          if !at_line_start && !depth = 0 then handle_line_start tok;
          if List.mem tok.kind openers then incr depth
          else if List.mem tok.kind closers then depth := max 0 (!depth - 1);
          line_has_content := true;
          emit tok
        end)
    raws;
  match !error with
  | Some msg -> Error msg
  | None ->
    let last_line =
      match !out with [] -> 1 | r :: _ -> r.Scanner.line + 1
    in
    if !line_has_content then emit (synth "NEWLINE" last_line 0);
    List.iter
      (fun level -> if level > 0 then emit (synth "DEDENT" last_line 0))
      !indents;
    Ok (List.rev !out)

(* --- Buffer pass --------------------------------------------------------

   The same algorithm over the struct-of-arrays token buffer: kinds are
   terminal ids (resolved against the grammar once, here), synthesized
   tokens are zero-width entries ([start = stop]) anchored at the start
   of the line they open or close, and columns at line starts come from
   the shared newline table — one binary search per logical line, not
   per token. *)

type ids = {
  newline : int;
  indent : int;
  dedent : int;
  opener_ids : int list;
  closer_ids : int list;
}

let ids_of_grammar g =
  let id name =
    match G.terminal_of_name g name with
    | Some t -> t
    | None -> invalid_arg ("Indenter: grammar lacks terminal " ^ name)
  in
  {
    newline = id "NEWLINE";
    indent = id "INDENT";
    dedent = id "DEDENT";
    opener_ids = List.filter_map (G.terminal_of_name g) openers;
    closer_ids = List.filter_map (G.terminal_of_name g) closers;
  }

let run_buf ids buf =
  let input = Token_buf.input buf in
  let lines = Token_buf.lines buf in
  let n = Token_buf.length buf in
  let out = Token_buf.create ~capacity:(n + 16) input in
  let emit_at kind ofs = Token_buf.add out ~kind ~start:ofs ~stop:ofs in
  let indents = ref [ 0 ] in
  let depth = ref 0 in
  let line_has_content = ref false in
  let at_line_start = ref true in
  let error = ref None in
  let handle_line_start i =
    let start = Token_buf.start_ofs buf i in
    let bol = Lines.line_start lines start in
    let col = start - bol in
    (match !indents with
    | top :: _ when col > top ->
      indents := col :: !indents;
      emit_at ids.indent bol
    | _ ->
      let rec dedent () =
        match !indents with
        | top :: rest when col < top ->
          indents := rest;
          emit_at ids.dedent bol;
          dedent ()
        | top :: _ ->
          if col <> top then
            error :=
              Some
                (Printf.sprintf
                   "line %d: unindent does not match any outer level"
                   (fst (Token_buf.pos buf i)))
        | [] -> assert false
      in
      dedent ());
    at_line_start := false
  in
  let i = ref 0 in
  let last_stop = ref 0 in
  while !error = None && !i < n do
    let kind = Token_buf.kind buf !i in
    if kind = ids.newline then begin
      if !depth = 0 && !line_has_content then begin
        (* Zero-width, like the list pass's lexeme-erased NEWLINE. *)
        emit_at ids.newline (Token_buf.start_ofs buf !i);
        last_stop := Token_buf.start_ofs buf !i;
        line_has_content := false;
        at_line_start := true
      end
      (* Blank line or implicit join: drop the newline. *)
    end
    else begin
      if !at_line_start && !depth = 0 then handle_line_start !i;
      if List.mem kind ids.opener_ids then incr depth
      else if List.mem kind ids.closer_ids then depth := max 0 (!depth - 1);
      line_has_content := true;
      Token_buf.add out ~kind ~start:(Token_buf.start_ofs buf !i)
        ~stop:(Token_buf.end_ofs buf !i);
      last_stop := Token_buf.end_ofs buf !i
    end;
    incr i
  done;
  match !error with
  | Some msg -> Error msg
  | None ->
    (* End of input: close the open logical line and the indent stack.
       The list pass anchors these at [last emitted token's line + 1], so
       anchor at the start of the line FOLLOWING the last emitted token —
       not at [String.length input], which drifts past it when the input
       ends with blank lines (their newlines are dropped, but they still
       advance the line count). *)
    let eof = String.length input in
    let anchor =
      let rec find j =
        if j >= eof then eof else if input.[j] = '\n' then j + 1 else find (j + 1)
      in
      find !last_stop
    in
    if !line_has_content then emit_at ids.newline anchor;
    List.iter
      (fun level -> if level > 0 then emit_at ids.dedent anchor)
      !indents;
    Ok out
