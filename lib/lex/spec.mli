(** Textual lexer specifications.

    Together with the textual EBNF grammar format, this lets a language be
    defined entirely in two files and driven from the CLI.  Syntax:

    {v
      // token rules, first match wins on ties, longest match overall
      NUMBER : "-?[0-9]+(\.[0-9]+)?" ;
      '{'    : "{" ;
      '}'    : "}" ;
      skip WS      : "[ \t\r\n]+" ;
      skip COMMENT : "//[^\n]*" ;
    v}

    Rule names are either identifiers or quoted literals (so punctuation
    terminals can be named exactly as the grammar spells them); patterns
    use the {!Regex_parse} syntax. *)

(** A scanner rule together with the source spans of its name and pattern,
    for span-carrying diagnostics ({!Costar_lint}). *)
type srule = {
  rule : Scanner.rule;
  span : Costar_grammar.Loc.span;
  pattern_span : Costar_grammar.Loc.span;
}

val srules_of_string : string -> (srule list, string) result

val rules_of_string : string -> (Scanner.rule list, string) result

val scanner_of_string : string -> (Scanner.t, string) result
