type state = int

(* The hot stepping tables live off the OCaml heap (DESIGN.md §13): the
   byte→class map as an int8 bigarray (class ids are < 256 by
   construction) and the flat state×class successor table as an int16
   bigarray (state ids and the -1 dead marker; [of_nfa] rejects scanners
   past 32767 states, far beyond any real rule set).  [Array1.unsafe_get]
   on these kinds returns a plain unboxed [int], so the scan loop reads
   them with zero allocation and zero GC scan cost. *)
type classes_arr =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type ctrans_arr =
  (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  start : state;
  trans : int array array;  (** state -> 256-entry successor array, -1 dead *)
  accepts : int option array;
  accept_ix : int array;  (** accepting rule index per state, -1 if none *)
  classes : classes_arr;  (** byte -> equivalence class, 256 entries *)
  num_classes : int;
  ctrans : ctrans_arr;  (** flat [state * num_classes] successor table *)
}

let start d = d.start
let num_states d = Array.length d.trans
let accept d s = d.accepts.(s)
let accept_ix d s = d.accept_ix.(s)

let num_classes d = d.num_classes
let class_of d c = Bigarray.Array1.get d.classes (Char.code c)
let class_table d = Array.init 256 (Bigarray.Array1.get d.classes)
let class_table_arr d = d.classes
let class_trans d = d.ctrans

let next_class d s cls =
  Bigarray.Array1.get d.ctrans ((s * d.num_classes) + cls)

let next d s c = next_class d s (class_of d c)

(* The raw 256-column row walk the classes compress; kept as the oracle
   for the class-correctness property (next ≡ next_raw on all bytes). *)
let next_raw d s c = d.trans.(s).(Char.code c)

(* --- Shortest-witness BFS ------------------------------------------------

   Shortest byte strings from the start state, over the class-compressed
   transition table.  Each class is represented by its most readable byte
   (letters/digits first, then other printable characters) so witnesses
   read as plausible lexemes, not control-character soup. *)

let class_reps d =
  let score c =
    match Char.chr c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> 3
    | ' ' -> 2
    | '!' .. '~' -> 2
    | _ -> 1
  in
  let rep = Array.make d.num_classes (-1) in
  let best = Array.make d.num_classes (-1) in
  for c = 0 to 255 do
    let k = Bigarray.Array1.get d.classes c in
    if score c > best.(k) then begin
      best.(k) <- score c;
      rep.(k) <- c
    end
  done;
  rep

let witness_table d =
  let n = num_states d in
  let rep = class_reps d in
  let dist = Array.make n (-1) in
  let back = Array.make n (-1, -1) in  (* predecessor state, class *)
  let q = Queue.create () in
  dist.(d.start) <- 0;
  Queue.add d.start q;
  while not (Queue.is_empty q) do
    let s = Queue.pop q in
    for k = 0 to d.num_classes - 1 do
      let s' = next_class d s k in
      if s' >= 0 && dist.(s') < 0 then begin
        dist.(s') <- dist.(s) + 1;
        back.(s') <- (s, k);
        Queue.add s' q
      end
    done
  done;
  Array.init n (fun s ->
      if dist.(s) < 0 then None
      else begin
        let buf = Bytes.create dist.(s) in
        let rec fill s i =
          if i >= 0 then begin
            let p, k = back.(s) in
            Bytes.set buf i (Char.chr rep.(k));
            fill p (i - 1)
          end
        in
        fill s (dist.(s) - 1);
        Some (Bytes.to_string buf)
      end)

let witness d s =
  if s < 0 || s >= num_states d then None else (witness_table d).(s)

let class_rep d k =
  if k < 0 || k >= d.num_classes then '?'
  else Char.chr (class_reps d).(k)

(* Shortest string from [s] to any accepting state (forward BFS).  [None]
   when no accepting state is reachable — such a state is "doomed": every
   scan passing through it must backtrack to an earlier match or fail. *)
let accept_witness d s =
  if s < 0 || s >= num_states d then None
  else begin
    let n = num_states d in
    let rep = class_reps d in
    let dist = Array.make n (-1) in
    let back = Array.make n (-1, -1) in
    let q = Queue.create () in
    dist.(s) <- 0;
    Queue.add s q;
    let found = ref (if d.accept_ix.(s) >= 0 then Some s else None) in
    while !found = None && not (Queue.is_empty q) do
      let u = Queue.pop q in
      let k = ref 0 in
      while !found = None && !k < d.num_classes do
        let u' = next_class d u !k in
        if u' >= 0 && dist.(u') < 0 then begin
          dist.(u') <- dist.(u) + 1;
          back.(u') <- (u, !k);
          if d.accept_ix.(u') >= 0 then found := Some u'
          else Queue.add u' q
        end;
        incr k
      done
    done;
    match !found with
    | None -> None
    | Some t ->
      let buf = Bytes.create dist.(t) in
      let rec fill u i =
        if i >= 0 then begin
          let p, k = back.(u) in
          Bytes.set buf i (Char.chr rep.(k));
          fill p (i - 1)
        end
      in
      fill t (dist.(t) - 1);
      Some (Bytes.to_string buf)
  end

let rule_witness d ix =
  let table = witness_table d in
  let best = ref None in
  for s = 0 to num_states d - 1 do
    if d.accept_ix.(s) = ix then
      match table.(s), !best with
      | Some w, Some b when String.length w >= String.length b -> ()
      | Some w, _ -> best := Some w
      | None, _ -> ()
  done;
  !best

module Key = struct
  type t = int list

  let compare = Stdlib.compare
end

module Key_map = Map.Make (Key)

(* Partition the 256 byte columns into equivalence classes: two bytes are
   interchangeable iff every state moves to the same successor on both.
   Scanners over ASCII-ish rule sets collapse 256 columns to a few dozen
   classes, so the flat class-indexed table stays cache-resident where the
   per-state 256-entry rows do not. *)
let build_classes trans =
  let n = Array.length trans in
  let tbl = Hashtbl.create 64 in
  let classes = Array.make 256 0 in
  let reps = ref [] in
  let num = ref 0 in
  for c = 0 to 255 do
    let column = Array.init n (fun s -> trans.(s).(c)) in
    match Hashtbl.find_opt tbl column with
    | Some id -> classes.(c) <- id
    | None ->
      let id = !num in
      incr num;
      Hashtbl.add tbl column id;
      classes.(c) <- id;
      reps := c :: !reps
  done;
  let reps = Array.of_list (List.rev !reps) in
  let nc = !num in
  let ctrans = Array.make (n * nc) (-1) in
  for s = 0 to n - 1 do
    for k = 0 to nc - 1 do
      ctrans.((s * nc) + k) <- trans.(s).(reps.(k))
    done
  done;
  (classes, nc, ctrans)

let of_nfa nfa =
  let ids = ref Key_map.empty in
  let trans_acc = ref [] in
  let accepts_acc = ref [] in
  let next_id = ref 0 in
  let rec intern states =
    match Key_map.find_opt states !ids with
    | Some id -> id
    | None ->
      let id = !next_id in
      incr next_id;
      ids := Key_map.add states id !ids;
      let accept =
        List.fold_left
          (fun acc s ->
            match Nfa.accept_rule nfa s, acc with
            | Some ix, Some ix' -> Some (min ix ix')
            | Some ix, None -> Some ix
            | None, acc -> acc)
          None states
      in
      accepts_acc := (id, accept) :: !accepts_acc;
      let row = Array.make 256 (-1) in
      (* Reserve the row slot now so recursion sees a stable order. *)
      trans_acc := (id, row) :: !trans_acc;
      for c = 0 to 255 do
        match Nfa.eps_closure nfa (Nfa.step nfa states (Char.chr c)) with
        | [] -> ()
        | states' -> row.(c) <- intern states'
      done;
      id
  in
  let start = intern (Nfa.eps_closure nfa [ Nfa.start nfa ]) in
  let n = !next_id in
  let trans = Array.make n [||] in
  List.iter (fun (id, row) -> trans.(id) <- row) !trans_acc;
  let accepts = Array.make n None in
  List.iter (fun (id, a) -> accepts.(id) <- a) !accepts_acc;
  let accept_ix = Array.map (function Some ix -> ix | None -> -1) accepts in
  if n > 32767 then
    invalid_arg
      (Printf.sprintf
         "Dfa.of_nfa: %d states exceed the int16 transition-table range" n);
  let classes, num_classes, ctrans = build_classes trans in
  let classes_ba =
    Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout 256
  in
  Array.iteri (Bigarray.Array1.set classes_ba) classes;
  let ctrans_ba =
    Bigarray.Array1.create Bigarray.int16_signed Bigarray.c_layout
      (Array.length ctrans)
  in
  Array.iteri (Bigarray.Array1.set ctrans_ba) ctrans;
  {
    start;
    trans;
    accepts;
    accept_ix;
    classes = classes_ba;
    num_classes;
    ctrans = ctrans_ba;
  }
