module G = Costar_grammar.Grammar
module Lines = Costar_grammar.Lines
module Token_buf = Costar_grammar.Token_buf

type action =
  | Emit
  | Skip

type rule = {
  name : string;
  re : Regex.t;
  action : action;
}

let rule ?(skip = false) name re =
  { name; re; action = (if skip then Skip else Emit) }

type t = {
  rules : rule array;
  dfa : Dfa.t;
}

let make rules =
  List.iter
    (fun r ->
      if Regex.nullable r.re then
        invalid_arg ("Scanner.make: rule " ^ r.name ^ " accepts empty string"))
    rules;
  let nfa = Nfa.build (List.map (fun r -> r.re) rules) in
  { rules = Array.of_list rules; dfa = Dfa.of_nfa nfa }

let dfa t = t.dfa
let rules t = Array.to_list t.rules

type raw = {
  kind : string;
  lexeme : string;
  line : int;
  col : int;
}

type error = {
  msg : string;
  err_line : int;
  err_col : int;
}

let pp_error ppf e =
  Fmt.pf ppf "lexical error at line %d, column %d: %s" e.err_line e.err_col
    e.msg

(* Maximal munch from [pos]: the end offset of the longest match and its
   rule index, or (-1, -1) if no rule matches.  The hot loop is two array
   reads per byte (byte -> class, (state, class) -> state) against the
   DFA's flat class table. *)
let munch dfa input n pos =
  let classes = Dfa.class_table_arr dfa in
  let ctrans = Dfa.class_trans dfa in
  let nc = Dfa.num_classes dfa in
  let best_end = ref (-1) and best_rule = ref (-1) in
  let state = ref (Dfa.start dfa) in
  let i = ref pos in
  (try
     while !i < n do
       let cls =
         Bigarray.Array1.unsafe_get classes
           (Char.code (String.unsafe_get input !i))
       in
       let s' = Bigarray.Array1.unsafe_get ctrans ((!state * nc) + cls) in
       if s' < 0 then raise_notrace Exit;
       state := s';
       incr i;
       let r = Dfa.accept_ix dfa s' in
       if r >= 0 then begin
         best_end := !i;
         best_rule := r
       end
     done
   with Exit -> ());
  (!best_end, !best_rule)

(* Positions come from the shared newline-offset table (built lazily, on
   the first token that needs one), not from per-lexeme line/col
   tracking, so the legacy and buffer paths report identical positions;
   skipped tokens allocate nothing — no substring, no position. *)
let scan t input =
  let n = String.length input in
  let lines = lazy (Lines.build input) in
  let pos_of ofs = Lines.pos (Lazy.force lines) ofs in
  let rec go pos acc =
    if pos >= n then Ok (List.rev acc)
    else begin
      let end_pos, rule_ix = munch t.dfa input n pos in
      if rule_ix < 0 then begin
        let line, col = pos_of pos in
        Error
          {
            msg = Printf.sprintf "no rule matches %C" input.[pos];
            err_line = line;
            err_col = col;
          }
      end
      else
        let r = t.rules.(rule_ix) in
        let acc =
          match r.action with
          | Skip -> acc
          | Emit ->
            let lexeme = String.sub input pos (end_pos - pos) in
            let line, col = pos_of pos in
            { kind = r.name; lexeme; line; col } :: acc
        in
        go end_pos acc
    end
  in
  go 0 []

let tokenize t g input =
  match scan t input with
  | Error e -> Error e
  | Ok raws ->
    let module Tk = Costar_grammar.Token in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | r :: rest -> (
        match G.terminal_of_name g r.kind with
        | Some term ->
          resolve (Tk.make ~line:r.line ~col:r.col term r.lexeme :: acc) rest
        | None ->
          Error
            {
              msg =
                Printf.sprintf "token kind %s is not a terminal of the grammar"
                  r.kind;
              err_line = r.line;
              err_col = r.col;
            })
    in
    resolve [] raws

(* --- Compiled scanner: the zero-copy buffer pipeline ------------------- *)

(* A scanner bound to a grammar: every rule's terminal id is resolved
   once, here, instead of once per token ([tokenize] re-resolves the rule
   name on every token it emits).  Scanning then runs in a single pass
   over the input, writing (kind, start, end) int triples into a
   struct-of-arrays buffer — no records, no substrings, no positions.
   Every table the loop reads is an off-heap bigarray (the DFA's int8
   class map and int16 successor table, plus the per-state emit table
   below), so a warm scan touches the OCaml heap only to grow the token
   buffer — which a pre-sized arena never does. *)
type compiled = {
  sc : t;
  cstart : int;
  classes : Dfa.classes_arr;
  ctrans : Dfa.ctrans_arr;
  nc : int;
  (* Per DFA state: the terminal id to emit if the state's accepting rule
     is an Emit rule, -1 for a Skip rule, -2 for a non-accepting state. *)
  accept_term : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
}

let compile t g =
  let missing =
    Array.to_list t.rules
    |> List.filter (fun r ->
           r.action = Emit && G.terminal_of_name g r.name = None)
    |> List.map (fun r -> r.name)
  in
  match missing with
  | _ :: _ ->
    Error
      (Printf.sprintf "token kinds are not terminals of the grammar: %s"
         (String.concat ", " missing))
  | [] ->
    let rule_term =
      Array.map
        (fun r ->
          match r.action with
          | Skip -> -1
          | Emit -> (
            match G.terminal_of_name g r.name with
            | Some term -> term
            | None -> assert false))
        t.rules
    in
    let accept_term =
      Bigarray.Array1.create Bigarray.int Bigarray.c_layout
        (Dfa.num_states t.dfa)
    in
    for s = 0 to Dfa.num_states t.dfa - 1 do
      let r = Dfa.accept_ix t.dfa s in
      Bigarray.Array1.set accept_term s (if r < 0 then -2 else rule_term.(r))
    done;
    Ok
      {
        sc = t;
        cstart = Dfa.start t.dfa;
        classes = Dfa.class_table_arr t.dfa;
        ctrans = Dfa.class_trans t.dfa;
        nc = Dfa.num_classes t.dfa;
        accept_term;
      }

let scanner_of_compiled c = c.sc

exception Lex_err of error

let scan_into c buf input =
  let n = String.length input in
  let classes = c.classes and ctrans = c.ctrans and nc = c.nc in
  let accept_term = c.accept_term in
  let pos = ref 0 in
  while !pos < n do
    (* Inlined maximal munch, tracking the emit decision (terminal id or
       skip) instead of the rule index: one array read per accept. *)
    let best_end = ref (-1) and best_term = ref (-2) in
    let state = ref c.cstart in
    let i = ref !pos in
    (try
       while !i < n do
         let cls =
           Bigarray.Array1.unsafe_get classes
             (Char.code (String.unsafe_get input !i))
         in
         let s' = Bigarray.Array1.unsafe_get ctrans ((!state * nc) + cls) in
         if s' < 0 then raise_notrace Exit;
         state := s';
         incr i;
         let t = Bigarray.Array1.unsafe_get accept_term s' in
         if t >= -1 then begin
           best_end := !i;
           best_term := t
         end
       done
     with Exit -> ());
    if !best_end < 0 then begin
      let line, col = Lines.pos (Token_buf.lines buf) !pos in
      raise_notrace
        (Lex_err
           {
             msg = Printf.sprintf "no rule matches %C" input.[!pos];
             err_line = line;
             err_col = col;
           })
    end;
    if !best_term >= 0 then
      Token_buf.add buf ~kind:!best_term ~start:!pos ~stop:!best_end;
    pos := !best_end
  done

let scan_buf c input =
  let buf = Token_buf.create_for_input input in
  match scan_into c buf input with
  | () -> Ok buf
  | exception Lex_err e -> Error e

(* Arena reuse: rebind the caller's buffer to the new input and scan into
   it.  A pre-sized arena cycled through [scan_reuse] makes steady-state
   lexing allocate nothing per request. *)
let scan_reuse c buf input =
  Token_buf.reset buf input;
  match scan_into c buf input with
  | () -> Ok buf
  | exception Lex_err e -> Error e
