(** Subset construction: NFA to DFA with byte-equivalence-classed
    transitions.

    Accepting DFA states carry the lowest accepting rule index of their NFA
    state set, implementing first-rule-wins tie-breaking for equal-length
    matches.

    The 256 byte columns are partitioned into equivalence classes (two
    bytes are equivalent iff every state agrees on their successors);
    transitions are stored once per class in a flat
    [state * num_classes] table plus a 256-entry byte→class map.  Both
    hot tables are off-heap bigarrays (int8 classes, int16 successors —
    see DESIGN.md §13); stepping is two unboxed array reads.  The raw
    per-state rows are retained as the oracle for the class-correctness
    property test. *)

type t

type classes_arr =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type ctrans_arr =
  (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t

type state = int

val start : t -> state
val num_states : t -> int

val of_nfa : Nfa.t -> t

(** [next dfa s c] is the successor state, or [-1] if the DFA dies.
    Steps through the class table. *)
val next : t -> state -> char -> state

(** [next_raw dfa s c] steps through the raw 256-column rows the class
    table compresses — the differential oracle for {!next}. *)
val next_raw : t -> state -> char -> state

(** Accepting rule index of a state, if accepting. *)
val accept : t -> state -> int option

(** Like {!accept}, unboxed: the rule index, or [-1] if non-accepting. *)
val accept_ix : t -> state -> int

(** {2 Equivalence-class internals (for the compiled scanner)} *)

val num_classes : t -> int
val class_of : t -> char -> int

(** The 256-entry byte→class map, materialized as a fresh [int array]
    (cold paths: coverage marking, tests). *)
val class_table : t -> int array

(** The 256-entry byte→class map's off-heap backing (do not mutate). *)
val class_table_arr : t -> classes_arr

(** The flat [state * num_classes] successor table (do not mutate). *)
val class_trans : t -> ctrans_arr

(** [next_class dfa s cls] steps on a precomputed class id. *)
val next_class : t -> state -> int -> state

(** {2 Shortest witnesses (DFA inversion)}

    BFS over the class transitions, each class rendered by its most
    readable representative byte.  Shared by the coverage generator (a
    concrete lexeme per terminal) and the F004 emptiness diagnostics (a
    "nearest non-empty sibling" example). *)

(** [witness dfa s] is a shortest byte string driving the DFA from its
    start state to [s]; [None] if [s] is unreachable (or out of range). *)
val witness : t -> state -> string option

(** [rule_witness dfa ix] is a shortest byte string the combined DFA maps
    to rule [ix] (first-rule-wins already applied: the accepting state's
    {!accept_ix} is [ix]); [None] when the rule is dead. *)
val rule_witness : t -> int -> string option

(** The most readable representative byte of a class ([?] out of range). *)
val class_rep : t -> int -> char

(** [accept_witness dfa s] is a shortest byte string driving the DFA from
    [s] to an accepting state ([""] if [s] accepts); [None] when no
    accepting state is reachable from [s] — every scan passing through [s]
    must backtrack or fail. *)
val accept_witness : t -> state -> string option
