(** Longest-match scanners built from prioritized regex rules.

    A scanner turns an input string into raw tokens using the
    maximal-munch rule; ties between rules matching the same length are
    broken by rule order (first rule wins), as in ANTLR and ocamllex.
    Rules marked [Skip] match but emit nothing (whitespace, comments).

    Two pipelines share the same DFA:

    - the legacy list pipeline ({!scan}/{!tokenize}), which materializes
      a record, lexeme, and position per token — kept as the
      differential oracle;
    - the zero-copy buffer pipeline ({!compile}/{!scan_buf}), which
      resolves each rule's terminal id against a grammar once, then
      scans in a single pass into a struct-of-arrays
      {!Costar_grammar.Token_buf.t} — no per-token records, no lexeme
      substrings, positions recovered lazily from the newline table. *)

type action =
  | Emit  (** produce a token named after the rule *)
  | Skip  (** match and discard *)

type rule = {
  name : string;
  re : Regex.t;
  action : action;
}

val rule : ?skip:bool -> string -> Regex.t -> rule

type t

(** @raise Invalid_argument if any rule accepts the empty string (such a
    rule could make the scanner loop). *)
val make : rule list -> t

(** The scanner's DFA (for tests and diagnostics). *)
val dfa : t -> Dfa.t

val rules : t -> rule list

(** A raw token, before terminal-name resolution against a grammar. *)
type raw = {
  kind : string;
  lexeme : string;
  line : int;
  col : int;
}

type error = {
  msg : string;
  err_line : int;
  err_col : int;
}

val pp_error : Format.formatter -> error -> unit

(** [scan t input] produces the raw token sequence, or the position of the
    first character no rule matches. *)
val scan : t -> string -> (raw list, error) result

(** [tokenize t g input] scans and resolves token kinds to terminals of
    [g].  Raw tokens whose kind is not a terminal of [g] produce an
    [Error]. *)
val tokenize :
  t -> Costar_grammar.Grammar.t -> string ->
  (Costar_grammar.Token.t list, error) result

(** {2 The compiled (buffer) pipeline} *)

type compiled

(** [compile t g] resolves every [Emit] rule's name to a terminal of [g],
    once.  [Error] lists the rules whose names are not terminals (the
    legacy pipeline reports these lazily, only when such a token appears
    in an input). *)
val compile : t -> Costar_grammar.Grammar.t -> (compiled, string) result

val scanner_of_compiled : compiled -> t

(** [scan_buf c input] scans the whole input into a fresh token buffer.
    Steady-state cost per token: the DFA walk plus three int writes —
    no allocation. *)
val scan_buf :
  compiled -> string -> (Costar_grammar.Token_buf.t, error) result

(** [scan_into c buf input] is {!scan_buf} into a caller-supplied buffer
    (which must have been created over [input]).
    @raise Lex_err on a lexical error. *)
val scan_into : compiled -> Costar_grammar.Token_buf.t -> string -> unit

(** [scan_reuse c buf input] rebinds [buf] to [input]
    ({!Costar_grammar.Token_buf.reset}) and scans into it: one pre-sized
    arena serves many requests, so steady-state lexing allocates nothing
    per request.  Returns the same buffer on success. *)
val scan_reuse :
  compiled ->
  Costar_grammar.Token_buf.t ->
  string ->
  (Costar_grammar.Token_buf.t, error) result

exception Lex_err of error
