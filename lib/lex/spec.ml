module Loc = Costar_grammar.Loc

exception Err of string

let fail fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

type tok =
  | Name of string  (** rule name: identifier or quoted literal *)
  | Pattern of string  (** raw pattern text between double quotes *)
  | Colon
  | Semi
  | Skip_kw
  | Eof

let lex input =
  let n = String.length input in
  let toks = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  let i = ref 0 in
  let col () = !i - !bol + 1 in
  let emit ~start_line ~start_col t =
    let span =
      Loc.make ~start_line ~start_col ~end_line:!line ~end_col:(col () - 1)
    in
    toks := (t, span) :: !toks
  in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = input.[!i] in
    let start_line = !line and start_col = col () in
    if c = '\n' then begin
      incr i;
      incr line;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && input.[!i + 1] = '/' then
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    else if c = ':' then begin
      incr i;
      emit ~start_line ~start_col Colon
    end
    else if c = ';' then begin
      incr i;
      emit ~start_line ~start_col Semi
    end
    else if c = '"' then begin
      (* Raw pattern: everything up to the closing unescaped quote, with
         backslash-escapes passed through to the regex parser (except the
         escaped quote itself). *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '"' then begin
          closed := true;
          incr i
        end
        else if input.[!i] = '\\' && !i + 1 < n && input.[!i + 1] = '"' then begin
          (* Keep the backslash: the regex parser handles the escape. *)
          Buffer.add_string buf "\\\"";
          i := !i + 2
        end
        else begin
          if input.[!i] = '\n' then begin
            incr i;
            incr line;
            bol := !i;
            Buffer.add_char buf '\n'
          end
          else begin
            Buffer.add_char buf input.[!i];
            incr i
          end
        end
      done;
      if not !closed then fail "line %d: unterminated pattern" !line;
      emit ~start_line ~start_col (Pattern (Buffer.contents buf))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 4 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then begin
          closed := true;
          incr i
        end
        else if input.[!i] = '\\' && !i + 1 < n then begin
          (match input.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | ch -> Buffer.add_char buf ch);
          i := !i + 2
        end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if not !closed then fail "line %d: unterminated name literal" !line;
      emit ~start_line ~start_col (Name (Buffer.contents buf))
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident input.[!i] do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      emit ~start_line ~start_col (if word = "skip" then Skip_kw else Name word)
    end
    else fail "line %d: unexpected character %C" !line c
  done;
  List.rev ((Eof, Loc.point !line (col ())) :: !toks)

type srule = {
  rule : Scanner.rule;
  span : Loc.span;  (** span of the rule name at its definition site *)
  pattern_span : Loc.span;  (** span of the quoted pattern *)
}

let srules_of_string input =
  match
    let toks = ref (lex input) in
    let peek () = match !toks with [] -> Eof | (t, _) :: _ -> t in
    let peek_span () =
      match !toks with [] -> Loc.dummy | (_, sp) :: _ -> sp
    in
    let advance () = match !toks with [] -> () | _ :: r -> toks := r in
    let rec rules acc =
      match peek () with
      | Eof -> List.rev acc
      | _ ->
        let skip =
          match peek () with
          | Skip_kw ->
            advance ();
            true
          | _ -> false
        in
        let name, span =
          match peek () with
          | Name n ->
            let sp = peek_span () in
            advance ();
            (n, sp)
          | _ -> fail "expected a rule name"
        in
        (match peek () with
        | Colon -> advance ()
        | _ -> fail "rule %s: expected ':'" name);
        let pattern, pattern_span =
          match peek () with
          | Pattern p ->
            let sp = peek_span () in
            advance ();
            (p, sp)
          | _ -> fail "rule %s: expected a quoted pattern" name
        in
        (match peek () with
        | Semi -> advance ()
        | _ -> fail "rule %s: expected ';'" name);
        let re =
          match Regex_parse.parse pattern with
          | Ok re -> re
          | Error msg -> fail "rule %s: %s" name msg
        in
        rules ({ rule = Scanner.rule ~skip name re; span; pattern_span } :: acc)
    in
    rules []
  with
  | [] -> Error "empty lexer specification"
  | rules -> Ok rules
  | exception Err msg -> Error msg

let rules_of_string input =
  Result.map (List.map (fun sr -> sr.rule)) (srules_of_string input)

let scanner_of_string input =
  match rules_of_string input with
  | Error _ as e -> e
  | Ok rules -> (
    match Scanner.make rules with
    | sc -> Ok sc
    | exception Invalid_argument msg -> Error msg)
