(** Static analysis of ALL(star) prediction decisions (paper §3.4–3.5,
    offline).

    At runtime, adaptive prediction walks a lookahead DFA whose states are
    interned SLL configuration sets and whose transitions are closure∘move
    steps along the actual input.  This module runs the {e same} simulation —
    the same {!Costar_core.Sll} closure and move, the same
    {!Costar_core.Cache} interning — but breadth-first over {e every}
    terminal instead of along one input, per decision nonterminal, bounded by
    a lookahead depth [k] and a state budget.  Because the exploration and
    the runtime share their code and their cache, every state the analyzer
    reports is byte-identical to the state the runtime would intern, and the
    fully explored cache doubles as a precompiled lookahead table
    ({!Costar_core.Cache.precompile}).

    For each decision the analyzer computes:

    - the minimal [k] for which the decision is SLL(k), up to the bound —
      or that no finite [k] suffices (a pending-state cycle in the DFA, or a
      confirmed ambiguity);
    - which alternative {e pairs} collide: configurations that share their
      (frames, context) can never again be separated by lookahead, with a
      shortest distinguishing-prefix witness reconstructed from the BFS
      parent chain, and — where a shortest-yield completion of the witness
      is confirmed ambiguous by the Earley derivation-counting oracle — a
      concrete ambiguous sentence;
    - whether runtime LL fallback is possible: exactly when a reachable
      pending state has two or more accepting configurations, the SLL
      verdict on some input is [Ambig_pred] and {!Costar_core.Predict}
      re-predicts in LL mode.  Decisions without such a state provably never
      leave SLL mode (property-tested against the instrumented runtime). *)

open Costar_grammar
open Costar_grammar.Symbols

(** Lookahead classification of one decision. *)
type lookahead =
  | Sll_k of int
      (** Minimal [k]: after at most [k] tokens every DFA path from the
          decision's initial state has decided (uniquely or by rejecting).
          [Sll_k 0] means the initial closure already decides. *)
  | Beyond of int
      (** Still undecided somewhere at the exploration bound [k] (or the
          state budget); a larger bound might still classify it. *)
  | Cyclic
      (** The explored DFA contains a cycle of undecided states: some input
          drives prediction forever without deciding, so the decision is
          SLL(k) for no finite [k] (e.g. Fig. 2's [S], which must scan to
          the end of an arbitrarily long input). *)
  | Ambiguous
      (** A collision was confirmed as a genuine ambiguity by the Earley
          oracle: no amount of lookahead can ever decide. *)

(** A colliding pair of alternatives. *)
type conflict = {
  alts : int * int;
      (** Production indices (grammar order, as in {!Grammar.prod}) of the
          two colliding alternatives, smaller first. *)
  witness : terminal list;
      (** Shortest token prefix driving the DFA from the decision's initial
          state to a state where the pair collides (BFS order ⇒ minimal). *)
  at_eof : bool;
      (** The collision involves accepting configurations: if the input ends
          here, SLL answers [Ambig_pred] and the runtime falls back to LL. *)
  ambiguous_word : terminal list option;
      (** A complete sentence of the decision nonterminal with ≥ 2 distinct
          parse trees (witness prefix + shortest-yield completion), present
          iff the Earley oracle confirmed it.  This is the A003 evidence. *)
}

type decision = {
  nt : nonterminal;
  n_alts : int;  (** number of alternatives (≥ 2 by construction) *)
  lookahead : lookahead;  (** meaningless when [error] is set *)
  conflicts : conflict list;  (** sorted by [alts] *)
  uses_stable_return : bool;
      (** Some explored closure forked past the truncated stack to static
          caller continuations (§3.5) — the SLL-vs-LL overapproximation is
          exercised somewhere in this decision's DFA. *)
  states : int;  (** distinct DFA states reached during exploration *)
  truncated : bool;  (** state budget exhausted before the depth bound *)
  error : Costar_core.Types.error option;
      (** Left recursion reachable from the decision: prediction (static or
          runtime) cannot simulate it.  The runtime hits the same error. *)
}

type t = {
  g : Grammar.t;
  k_bound : int;
  decisions : decision list;  (** in nonterminal order; only decisions *)
  cache : Costar_core.Cache.t;
      (** The threaded DFA cache after exploring every decision: initial
          states, every state reachable within the bounds, and their
          transitions on every terminal — a superset of what any single
          parse warms up, ready for {!Costar_core.Cache.precompile}. *)
}

val default_k : int
val default_max_states : int
val default_max_configs : int

(** [analyze g] explores every decision of [g].

    [k] bounds the lookahead depth (default {!default_k}); [max_states]
    bounds the states explored per decision (default {!default_max_states});
    [max_configs] bounds the configuration-set size a state may have and
    still be expanded (default {!default_max_configs}) — ambiguous
    grammars can grow the simulated-stack set exponentially with depth,
    and a state past this bound is treated as truncation, exactly like
    [max_states]; [oracle:false] skips the Earley confirmation of
    candidate ambiguous words (conflicts are still reported, with
    [ambiguous_word = None]); [cache] seeds the DFA cache; [analysis]
    reuses an existing {!Analysis.t} for [g]. *)
val analyze :
  ?k:int ->
  ?max_states:int ->
  ?max_configs:int ->
  ?oracle:bool ->
  ?cache:Costar_core.Cache.t ->
  ?analysis:Analysis.t ->
  Grammar.t ->
  t

(** The decision record for a nonterminal, if it is a decision point. *)
val decision_for : t -> nonterminal -> decision option

(** [ll_fallback_possible d]: some input makes the runtime's SLL verdict
    [Ambig_pred], triggering the exact-LL re-prediction — i.e. [d] has a
    conflict with [at_eof = true]. *)
val ll_fallback_possible : decision -> bool

val lookahead_to_string : lookahead -> string

(** Render a witness as space-separated terminal names ("ε" if empty). *)
val witness_string : Grammar.t -> terminal list -> string

(** Terminal word → token list (each terminal's name as its lexeme), for
    feeding witnesses back into parsers and oracles. *)
val tokens_of_terms : Grammar.t -> terminal list -> Token.t list
