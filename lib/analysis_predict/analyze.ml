open Costar_grammar
open Costar_grammar.Symbols
module Cache = Costar_core.Cache
module Config = Costar_core.Config
module Sll = Costar_core.Sll
module Types = Costar_core.Types
module Count = Costar_earley.Count

type lookahead =
  | Sll_k of int
  | Beyond of int
  | Cyclic
  | Ambiguous

type conflict = {
  alts : int * int;
  witness : terminal list;
  at_eof : bool;
  ambiguous_word : terminal list option;
}

type decision = {
  nt : nonterminal;
  n_alts : int;
  lookahead : lookahead;
  conflicts : conflict list;
  uses_stable_return : bool;
  states : int;
  truncated : bool;
  error : Types.error option;
}

type t = {
  g : Grammar.t;
  k_bound : int;
  decisions : decision list;
  cache : Cache.t;
}

let default_k = 8
let default_max_states = 4000

(* Per-state configuration bound: dot (the worst of the real grammars)
   peaks at ~4.4k configs per state, while pathologically ambiguous
   grammars blow straight past this on the way to millions. *)
let default_max_configs = 8_000

let ll_fallback_possible d = List.exists (fun c -> c.at_eof) d.conflicts

let lookahead_to_string = function
  | Sll_k k -> Printf.sprintf "SLL(%d)" k
  | Beyond k -> Printf.sprintf "not SLL(k) for k <= %d" k
  | Cyclic -> "unbounded (undecided DFA cycle)"
  | Ambiguous -> "ambiguous"

let witness_string = Names.terminals

let tokens_of_terms g w =
  List.map (fun a -> Token.make a (Grammar.terminal_name g a)) w

(* Groups of configurations that share (frames, context): such configurations
   make identical moves forever, so once two or more predictions share one
   group no amount of further lookahead can separate them.  The group with
   empty frames in accepting context is the end-of-input collision that makes
   the runtime's SLL verdict [Ambig_pred]. *)
let merged_groups configs =
  let rec add groups (cfg : Config.sll) =
    match groups with
    | [] -> [ (cfg.s_frames, cfg.s_ctx, [ cfg.s_pred ]) ]
    | (f, c, preds) :: rest
      when f = cfg.s_frames && Config.compare_sctx c cfg.s_ctx = 0 ->
      (f, c, preds @ [ cfg.s_pred ]) :: rest
    | gp :: rest -> gp :: add rest cfg
  in
  List.fold_left add [] configs
  |> List.filter_map (fun (f, c, preds) ->
         let preds = List.sort_uniq Int.compare preds in
         if List.length preds >= 2 then Some (f, c, preds) else None)

(* Unordered pairs of an ascending list, smaller component first. *)
let rec pairs = function
  | [] -> []
  | p :: rest -> List.map (fun q -> (p, q)) rest @ pairs rest

type conflict_acc = {
  mutable c_witness : terminal list;
  mutable c_at_eof : bool;
  mutable c_amb : terminal list option;
}

exception Abort of Types.error

let analyze_decision g anl ~k ~max_states ~max_configs ~oracle cache x =
  let n_alts = List.length (Grammar.prods_of g x) in
  match Sll.closure_cached_ext g anl cache (Sll.init_configs g anl x) with
  | cache, Error e ->
    ( cache,
      {
        nt = x;
        n_alts;
        lookahead = Beyond 0;
        conflicts = [];
        uses_stable_return = false;
        states = 0;
        truncated = false;
        error = Some e;
      } )
  | cache, Ok (configs0, forked0) ->
    let cache, sid0 = Cache.intern cache configs0 in
    let cache =
      match Cache.find_init cache x with
      | Some _ -> cache
      | None -> Cache.add_init cache x sid0
    in
    let cache = ref cache in
    let forked = ref forked0 in
    (* Per-decision BFS bookkeeping (the DFA cache itself is global). *)
    let depth_of = Hashtbl.create 64 in
    let parent = Hashtbl.create 64 in
    let pending_succs = Hashtbl.create 64 in
    let truncated = ref false in
    let at_bound = ref false in
    let max_pending_depth = ref (-1) in
    let conflicts : (int * int, conflict_acc) Hashtbl.t = Hashtbl.create 8 in
    let path_to sid =
      let rec go sid acc =
        match Hashtbl.find_opt parent sid with
        | None -> acc
        | Some (a, psid) -> go psid (a :: acc)
      in
      go sid []
    in
    let note pair ~witness ~at_eof ~amb =
      match Hashtbl.find_opt conflicts pair with
      | None ->
        Hashtbl.add conflicts pair
          { c_witness = witness; c_at_eof = at_eof; c_amb = amb }
      | Some acc ->
        (* BFS visits states in depth order, so the recorded witness is
           already a shortest one. *)
        acc.c_at_eof <- acc.c_at_eof || at_eof;
        if acc.c_amb = None then acc.c_amb <- amb
    in
    let confirm_ambiguous word =
      oracle && Count.count_trees_sym g x (tokens_of_terms g word) >= 2
    in
    let queue = Queue.create () in
    Hashtbl.replace depth_of sid0 0;
    Queue.add sid0 queue;
    let n_states = ref 1 in
    let err = ref None in
    (try
       while not (Queue.is_empty queue) do
         let sid = Queue.pop queue in
         let d = Hashtbl.find depth_of sid in
         let info = Cache.info !cache sid in
         match info.Cache.verdict with
         | Cache.V_empty | Cache.V_all_pred _ -> ()
         | Cache.V_pending
           when List.length info.Cache.configs > max_configs ->
           (* Ambiguity can make the simulated-stack set grow exponentially
              with depth (each config is a distinct derivation prefix).
              Mining such a state for conflict pairs — let alone expanding
              it — costs more than the whole rest of the analysis, so give
              up on this branch exactly like [max_states] does. *)
           truncated := true
         | Cache.V_pending ->
           if d > !max_pending_depth then max_pending_depth := d;
           let w = path_to sid in
           List.iter
             (fun (frames, ctx, preds) ->
               let at_eof =
                 Frames.spine_is_nil frames && ctx = Config.Ctx_accept
               in
               let amb =
                 (* Candidate ambiguous sentence: the path to this state plus
                    a shortest completion of the merged group's remaining
                    frames.  Only kept if the Earley oracle counts >= 2
                    derivations of it from the decision nonterminal (the
                    completion may contain caller-continuation tokens from a
                    stable-return fork, in which case it is not a sentence of
                    [x] and confirmation correctly fails). *)
                 let completion =
                   if at_eof then Some []
                   else
                     Analysis.min_yield_seq anl
                       (List.concat
                          (Frames.frames_of_spine (Analysis.frames anl) frames))
                 in
                 match completion with
                 | None -> None
                 | Some suffix ->
                   let word = w @ suffix in
                   if confirm_ambiguous word then Some word else None
               in
               List.iter
                 (fun pr -> note pr ~witness:w ~at_eof ~amb)
                 (pairs preds))
             (merged_groups info.Cache.configs);
           if d >= k then begin
             at_bound := true;
             (* Alternatives still alive together at the bound: report the
                pairs so the "not SLL(k)" verdict carries a witness. *)
             List.iter
               (fun pr -> note pr ~witness:w ~at_eof:false ~amb:None)
               (pairs (Config.preds_of_sll info.Cache.configs))
           end
           else if !n_states > max_states then truncated := true
           else begin
             let moved_to = ref [] in
             for a = 0 to Grammar.num_terminals g - 1 do
               match
                 Sll.closure_cached_ext g anl !cache
                   (Sll.move anl info.Cache.configs a)
               with
               | cache', Error e ->
                 cache := cache';
                 raise (Abort e)
               | cache', Ok (configs', f) ->
                 let cache', sid' = Cache.intern cache' configs' in
                 (* [add_trans] is idempotent, so no find-before-add dance. *)
                 cache := Cache.add_trans cache' sid a sid';
                 forked := !forked || f;
                 let pending =
                   match (Cache.info cache' sid').Cache.verdict with
                   | Cache.V_pending -> true
                   | Cache.V_empty | Cache.V_all_pred _ -> false
                 in
                 if pending then moved_to := sid' :: !moved_to;
                 if not (Hashtbl.mem depth_of sid') then begin
                   Hashtbl.replace depth_of sid' (d + 1);
                   Hashtbl.replace parent sid' (a, sid);
                   incr n_states;
                   if pending then Queue.add sid' queue
                 end
             done;
             Hashtbl.replace pending_succs sid !moved_to
           end
       done
     with Abort e -> err := Some e);
    (* A cycle among fully expanded pending states: some input drives the
       DFA forever without deciding, so no finite lookahead suffices. *)
    let cycle_at =
      let color = Hashtbl.create 16 in
      let rec visit sid =
        match Hashtbl.find_opt color sid with
        | Some `Gray -> Some sid
        | Some `Black -> None
        | None ->
          Hashtbl.replace color sid `Gray;
          let succs =
            Option.value ~default:[] (Hashtbl.find_opt pending_succs sid)
          in
          let r =
            List.fold_left
              (fun found s ->
                match found with
                | Some _ -> found
                | None ->
                  if Hashtbl.mem pending_succs s then visit s else None)
              None succs
          in
          Hashtbl.replace color sid `Black;
          r
      in
      if Hashtbl.mem pending_succs sid0 then visit sid0 else None
    in
    (match cycle_at with
    | None -> ()
    | Some sid ->
      (* Make sure the unbounded verdict carries a witness pair. *)
      let w = path_to sid in
      List.iter
        (fun pr -> note pr ~witness:w ~at_eof:false ~amb:None)
        (pairs (Config.preds_of_sll (Cache.info !cache sid).Cache.configs)));
    let conflicts =
      Hashtbl.fold
        (fun pair acc l ->
          {
            alts = pair;
            witness = acc.c_witness;
            at_eof = acc.c_at_eof;
            ambiguous_word = acc.c_amb;
          }
          :: l)
        conflicts []
      |> List.sort (fun c1 c2 -> compare c1.alts c2.alts)
    in
    let lookahead =
      if List.exists (fun c -> c.ambiguous_word <> None) conflicts then
        Ambiguous
      else if cycle_at <> None then Cyclic
      else if !at_bound || !truncated then Beyond k
      else Sll_k (1 + !max_pending_depth)
    in
    ( !cache,
      {
        nt = x;
        n_alts;
        lookahead;
        conflicts;
        uses_stable_return = !forked;
        states = !n_states;
        truncated = !truncated;
        error = !err;
      } )

let analyze ?(k = default_k) ?(max_states = default_max_states)
    ?(max_configs = default_max_configs) ?(oracle = true) ?cache ?analysis g =
  (* A supplied cache is bound to the analysis it was created with (its
     frame interner defines the configuration representation), so reuse its
     analysis rather than building a fresh, incompatible one. *)
  let anl =
    match analysis, cache with
    | Some a, _ -> a
    | None, Some c -> Cache.analysis c
    | None, None -> Analysis.make g
  in
  let cache =
    ref (match cache with Some c -> c | None -> Cache.create anl)
  in
  let decisions = ref [] in
  for x = 0 to Grammar.num_nonterminals g - 1 do
    if List.length (Grammar.prods_of g x) >= 2 then begin
      let cache', d =
        analyze_decision g anl ~k ~max_states ~max_configs ~oracle !cache x
      in
      cache := cache';
      decisions := d :: !decisions
    end
  done;
  { g; k_bound = k; decisions = List.rev !decisions; cache = !cache }

let decision_for t x = List.find_opt (fun d -> d.nt = x) t.decisions
