(* The `costar tables` compilation substrate: grammar dataflow facts
   (NULLABLE / FIRST / FOLLOW / sync bitsets from Costar_flow.Flow) and the
   per-decision SLL verdicts of the static analyzer (Analyze), exported as
   one fingerprinted, validated flat int-array image.

   This is the Coco/R CRT encoding taken seriously: the consumers named in
   ROADMAP items 2 (multi-error recovery: sync/anchor sets) and 4
   (turbo-gen: packed per-decision tables) load this image instead of
   re-running the analyses.  Following cache persistence v2, the format is
   a plain-text header validated *before* any payload is touched — magic,
   format version, grammar fingerprint, payload word count and checksum —
   then the payload as little-endian 32-bit words.  No [Marshal] anywhere:
   a corrupt or truncated file can only produce a typed [error], never an
   exception or a bogus table.

   Payload layout (all 32-bit words):

     META       n_terms n_nts n_prods start k_bound n_decisions
     NULLABLE   ceil(n_nts/32) words, bit x set iff NULLABLE(x)
     REACHABLE  ceil(n_nts/32) words
     PRODUCTIVE ceil(n_nts/32) words
     FIRST      n_nts rows of W = ceil((n_terms+1)/32) words (bit a: a ∈ FIRST)
     FOLLOW     n_nts rows of W; bit n_terms = end-of-input may follow
     SYNC       n_nts rows of W; bit n_terms = end-of-input anchor
     DECISIONS  n_decisions variable-length records:
       nt n_alts la_kind la_k stable states truncated
       err_kind [err_payload]      (0 none | 1 left-recursive: nt,
                                    2 invalid-state: len bytes)
       n_conflicts, then per conflict:
       alt_i alt_j at_eof wlen witness-terms amb_kind [alen amb-terms]

   The image keeps the decoded word array verbatim, so load → save is
   byte-identical, and decisions reconstructed from it are structurally
   identical to the live analyzer's (the differential gate in
   test/test_tables.ml and CI). *)

open Costar_grammar
module Flow = Costar_flow.Flow
module Bitset = Costar_flow.Bitset
module Types = Costar_core.Types

type error =
  | Bad_magic
  | Bad_version of string
  | Fingerprint_mismatch of { expected : string; found : string }
  | Truncated
  | Checksum_mismatch
  | Malformed of string

let error_to_string = function
  | Bad_magic -> "not a costar tables image (bad magic)"
  | Bad_version v ->
    Printf.sprintf
      "unsupported tables-image format version %s (this build reads version \
       1); regenerate it with `costar tables`"
      v
  | Fingerprint_mismatch { expected; found } ->
    Printf.sprintf
      "tables image was built for a different grammar (fingerprint %s, \
       expected %s); regenerate it with `costar tables`"
      found expected
  | Truncated -> "corrupt tables image (truncated payload)"
  | Checksum_mismatch -> "corrupt tables image (checksum mismatch)"
  | Malformed what ->
    Printf.sprintf "corrupt tables image (malformed payload: %s)" what

type t = {
  fingerprint : string;
  words : int array;  (* the full payload, exactly as on disk *)
}

let magic = "costar/tables"
let format_version = 1
let bits = Flatimg.bits
let words_for = Flatimg.words_for

(* --- Encoding ----------------------------------------------------------- *)

(* The payload is accumulated as a reversed word list; [build] is the only
   producer so quadratic appends never threaten. *)
let push = Flatimg.push

let push_bools buf flags =
  let row = Array.make (words_for (Array.length flags)) 0 in
  Array.iteri
    (fun i b ->
      if b then row.(i / bits) <- row.(i / bits) lor (1 lsl (i mod bits)))
    flags;
  Array.iter (push buf) row

(* One terminal-set row: [universe] bits from the bitset plus the
   end-of-input flag at bit [universe]. *)
let push_terminal_row buf set ~eof =
  let n = Bitset.universe set in
  let row = Array.make (words_for (n + 1)) 0 in
  Bitset.iter
    (fun i -> row.(i / bits) <- row.(i / bits) lor (1 lsl (i mod bits)))
    set;
  if eof then row.(n / bits) <- row.(n / bits) lor (1 lsl (n mod bits));
  Array.iter (push buf) row

let push_word buf w =
  push buf (List.length w);
  List.iter (push buf) w

let push_decision buf (d : Analyze.decision) =
  push buf d.Analyze.nt;
  push buf d.Analyze.n_alts;
  (match d.Analyze.lookahead with
  | Analyze.Sll_k k -> push buf 0; push buf k
  | Analyze.Beyond k -> push buf 1; push buf k
  | Analyze.Cyclic -> push buf 2; push buf 0
  | Analyze.Ambiguous -> push buf 3; push buf 0);
  push buf (if d.Analyze.uses_stable_return then 1 else 0);
  push buf d.Analyze.states;
  push buf (if d.Analyze.truncated then 1 else 0);
  (match d.Analyze.error with
  | None -> push buf 0
  | Some (Types.Left_recursive x) -> push buf 1; push buf x
  | Some (Types.Invalid_state s) ->
    push buf 2;
    push buf (String.length s);
    String.iter (fun c -> push buf (Char.code c)) s);
  push buf (List.length d.Analyze.conflicts);
  List.iter
    (fun (c : Analyze.conflict) ->
      push buf (fst c.Analyze.alts);
      push buf (snd c.Analyze.alts);
      push buf (if c.Analyze.at_eof then 1 else 0);
      push_word buf c.Analyze.witness;
      match c.Analyze.ambiguous_word with
      | None -> push buf 0
      | Some w -> push buf 1; push_word buf w)
    d.Analyze.conflicts

let build g flow (r : Analyze.t) =
  let n_nts = Grammar.num_nonterminals g in
  let buf = ref [] in
  push buf (Grammar.num_terminals g);
  push buf n_nts;
  push buf (Grammar.num_productions g);
  push buf (Grammar.start g);
  push buf r.Analyze.k_bound;
  push buf (List.length r.Analyze.decisions);
  push_bools buf (Array.init n_nts (Flow.nullable flow));
  push_bools buf (Array.init n_nts (Flow.reachable flow));
  push_bools buf (Array.init n_nts (Flow.productive flow));
  for x = 0 to n_nts - 1 do
    push_terminal_row buf (Flow.first flow x) ~eof:false
  done;
  for x = 0 to n_nts - 1 do
    push_terminal_row buf (Flow.follow flow x) ~eof:(Flow.follow_end flow x)
  done;
  for x = 0 to n_nts - 1 do
    push_terminal_row buf (Flow.sync flow x) ~eof:(Flow.follow_end flow x)
  done;
  List.iter (push_decision buf) r.Analyze.decisions;
  { fingerprint = Grammar.fingerprint g;
    words = Array.of_list (List.rev !buf) }

(* FNV-1a over the payload bytes, rendered as one hex word in the header
   (the byte discipline lives in {!Costar_grammar.Flatimg}, shared with
   the v3 prediction-cache image). *)
let checksum = Flatimg.checksum

let encode t =
  let buf = Buffer.create ((Array.length t.words * 4) + 128) in
  Buffer.add_string buf
    (Printf.sprintf "%s\n%d\n%s\n%d %08x\n" magic format_version t.fingerprint
       (Array.length t.words) (checksum t.words));
  Flatimg.add_le_words buf t.words;
  Buffer.contents buf

(* --- Checked reads ------------------------------------------------------- *)

(* Every payload read is bounds-checked: overruns and nonsense values turn
   into [Bad], never an exception escaping to a consumer.  [decode] runs the
   full structural walk once, so the public accessors below only operate on
   images where it already succeeded. *)
exception Bad of error

let word t i =
  if i < 0 || i >= Array.length t.words then raise (Bad Truncated)
  else t.words.(i)

let read t pos =
  let w = word t !pos in
  incr pos;
  w

let meta t =
  let n_terms = word t 0 in
  let n_nts = word t 1 in
  let n_prods = word t 2 in
  let start = word t 3 in
  let k_bound = word t 4 in
  let n_decisions = word t 5 in
  if n_terms < 0 || n_nts <= 0 || n_prods < 0 || n_decisions < 0 then
    raise (Bad (Malformed "negative sizes in META"));
  if start < 0 || start >= n_nts then
    raise (Bad (Malformed "start symbol out of range"));
  (n_terms, n_nts, n_prods, start, k_bound, n_decisions)

(* Word offsets of the fixed-size sections. *)
type sections = {
  n_terms : int;
  n_nts : int;
  n_prods : int;
  n_decisions : int;
  k : int;
  row_w : int;  (* words per FIRST/FOLLOW/SYNC row *)
  nullable_at : int;
  reachable_at : int;
  productive_at : int;
  first_at : int;
  follow_at : int;
  sync_at : int;
  decisions_at : int;
}

let layout t =
  let n_terms, n_nts, n_prods, _, k, n_decisions = meta t in
  let wn = words_for n_nts in
  let row_w = words_for (n_terms + 1) in
  let nullable_at = 6 in
  let reachable_at = nullable_at + wn in
  let productive_at = reachable_at + wn in
  let first_at = productive_at + wn in
  let follow_at = first_at + (n_nts * row_w) in
  let sync_at = follow_at + (n_nts * row_w) in
  let decisions_at = sync_at + (n_nts * row_w) in
  { n_terms; n_nts; n_prods; n_decisions; k; row_w; nullable_at;
    reachable_at; productive_at; first_at; follow_at; sync_at; decisions_at }

let bit_at t ~at i = word t (at + (i / bits)) land (1 lsl (i mod bits)) <> 0

let read_list t pos len ~what ~check =
  if len < 0 then raise (Bad (Malformed ("negative " ^ what ^ " length")));
  if len > 1 lsl 20 then raise (Bad (Malformed ("oversized " ^ what)));
  let rec go n acc =
    if n = 0 then List.rev acc
    else begin
      let v = read t pos in
      if not (check v) then
        raise (Bad (Malformed (what ^ " element out of range")));
      go (n - 1) (v :: acc)
    end
  in
  go len []

let read_decision t pos sec =
  let nt = read t pos in
  if nt < 0 || nt >= sec.n_nts then
    raise (Bad (Malformed "decision nonterminal out of range"));
  let n_alts = read t pos in
  let la_kind = read t pos in
  let la_k = read t pos in
  let lookahead =
    match la_kind with
    | 0 -> Analyze.Sll_k la_k
    | 1 -> Analyze.Beyond la_k
    | 2 -> Analyze.Cyclic
    | 3 -> Analyze.Ambiguous
    | k -> raise (Bad (Malformed (Printf.sprintf "lookahead kind %d" k)))
  in
  let uses_stable_return = read t pos <> 0 in
  let states = read t pos in
  let truncated = read t pos <> 0 in
  let error =
    match read t pos with
    | 0 -> None
    | 1 ->
      let x = read t pos in
      if x < 0 || x >= sec.n_nts then
        raise (Bad (Malformed "error nonterminal out of range"));
      Some (Types.Left_recursive x)
    | 2 ->
      let cs =
        read_list t pos (read t pos) ~what:"error string"
          ~check:(fun b -> b >= 0 && b < 256)
      in
      let b = Bytes.create (List.length cs) in
      List.iteri (fun i c -> Bytes.set b i (Char.chr c)) cs;
      Some (Types.Invalid_state (Bytes.to_string b))
    | k -> raise (Bad (Malformed (Printf.sprintf "error kind %d" k)))
  in
  let term a = a >= 0 && a < sec.n_terms in
  let n_conflicts = read t pos in
  if n_conflicts < 0 || n_conflicts > 1 lsl 20 then
    raise (Bad (Malformed "bad conflict count"));
  let conflicts = ref [] in
  for _ = 1 to n_conflicts do
    let alt_i = read t pos in
    let alt_j = read t pos in
    if alt_i < 0 || alt_i >= sec.n_prods || alt_j < 0 || alt_j >= sec.n_prods
    then raise (Bad (Malformed "conflict production out of range"));
    let at_eof = read t pos <> 0 in
    let witness = read_list t pos (read t pos) ~what:"witness" ~check:term in
    let ambiguous_word =
      match read t pos with
      | 0 -> None
      | 1 ->
        Some (read_list t pos (read t pos) ~what:"ambiguous word" ~check:term)
      | k -> raise (Bad (Malformed (Printf.sprintf "ambiguity flag %d" k)))
    in
    conflicts :=
      { Analyze.alts = (alt_i, alt_j); witness; at_eof; ambiguous_word }
      :: !conflicts
  done;
  {
    Analyze.nt;
    n_alts;
    lookahead;
    conflicts = List.rev !conflicts;
    uses_stable_return;
    states;
    truncated;
    error;
  }

let decisions t =
  let sec = layout t in
  let pos = ref sec.decisions_at in
  let rec go n acc =
    if n = 0 then List.rev acc
    else go (n - 1) (read_decision t pos sec :: acc)
  in
  go sec.n_decisions []

let validate t =
  match
    let sec = layout t in
    if sec.decisions_at > Array.length t.words then raise (Bad Truncated);
    let pos = ref sec.decisions_at in
    for _ = 1 to sec.n_decisions do
      ignore (read_decision t pos sec)
    done;
    if !pos <> Array.length t.words then
      raise (Bad (Malformed "trailing words after decisions"))
  with
  | () -> Ok ()
  | exception Bad e -> Error e

(* --- Decoding ------------------------------------------------------------ *)

let decode ?expect_fingerprint s =
  let next_line pos =
    match String.index_from_opt s pos '\n' with
    | None -> None
    | Some i -> Some (String.sub s pos (i - pos), i + 1)
  in
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let line pos =
    match next_line pos with None -> Error Truncated | Some lp -> Ok lp
  in
  match next_line 0 with
  | None -> Error Bad_magic
  | Some (m, _) when m <> magic -> Error Bad_magic
  | Some (_, p1) ->
    let* v, p2 = line p1 in
    if v <> string_of_int format_version then Error (Bad_version v)
    else
      let* fp, p3 = line p2 in
      let* () =
        match expect_fingerprint with
        | Some expected when expected <> fp ->
          Error (Fingerprint_mismatch { expected; found = fp })
        | _ -> Ok ()
      in
      let* counts, p4 = line p3 in
      let* n_words, sum =
        match Scanf.sscanf_opt counts "%d %x%!" (fun n c -> (n, c)) with
        | None -> Error (Malformed "bad count/checksum line")
        | Some nc -> Ok nc
      in
      if n_words < 0 || String.length s - p4 < n_words * 4 then Error Truncated
      else if String.length s - p4 > n_words * 4 then
        Error (Malformed "trailing bytes after payload")
      else begin
        let words = Flatimg.words_of_le_string s ~pos:p4 ~count:n_words in
        if checksum words <> sum then Error Checksum_mismatch
        else
          let t = { fingerprint = fp; words } in
          let* () = validate t in
          Ok t
      end

(* --- Public accessors ---------------------------------------------------- *)

let fingerprint t = t.fingerprint
let k_bound t = (layout t).k

let sizes t =
  let sec = layout t in
  (sec.n_terms, sec.n_nts, sec.n_prods, sec.n_decisions)

let nt_flag t x ~at name =
  let sec = layout t in
  if x < 0 || x >= sec.n_nts then invalid_arg ("Tables." ^ name);
  bit_at t ~at:(at sec) x

let nullable t x = nt_flag t x ~at:(fun s -> s.nullable_at) "nullable"
let reachable t x = nt_flag t x ~at:(fun s -> s.reachable_at) "reachable"
let productive t x = nt_flag t x ~at:(fun s -> s.productive_at) "productive"

let terminal_row t x ~at =
  let sec = layout t in
  if x < 0 || x >= sec.n_nts then
    invalid_arg "Tables: nonterminal out of range";
  let row = at sec + (x * sec.row_w) in
  let acc = ref [] in
  for a = sec.n_terms - 1 downto 0 do
    if bit_at t ~at:row a then acc := a :: !acc
  done;
  !acc

let first t x = terminal_row t x ~at:(fun s -> s.first_at)
let follow t x = terminal_row t x ~at:(fun s -> s.follow_at)
let sync t x = terminal_row t x ~at:(fun s -> s.sync_at)

let follow_end t x =
  let sec = layout t in
  if x < 0 || x >= sec.n_nts then invalid_arg "Tables.follow_end";
  bit_at t ~at:(sec.follow_at + (x * sec.row_w)) sec.n_terms

(* Structural equality of decision lists: the differential gate's
   definition of "identical". *)
let same_decisions (a : Analyze.decision list) (b : Analyze.decision list) =
  a = b

(* --- Dump ---------------------------------------------------------------- *)

let dump g t =
  let buf = Buffer.create 1024 in
  let n_terms, n_nts, n_prods, n_decisions = sizes t in
  Buffer.add_string buf
    (Printf.sprintf
       "tables image: %d terminals, %d nonterminals, %d productions, %d \
        decisions (k <= %d)\nfingerprint: %s\n"
       n_terms n_nts n_prods n_decisions (k_bound t) (fingerprint t));
  for x = 0 to n_nts - 1 do
    let set label eof = function
      | [] when not eof -> Printf.sprintf "  %s: {}" label
      | l ->
        Printf.sprintf "  %s: { %s%s }" label
          (String.concat " " (List.map (Names.terminal g) l))
          (if eof then (if l = [] then "<eof>" else " <eof>") else "")
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s%s\n"
         (Names.nonterminal g x)
         (if nullable t x then " [nullable]" else "")
         (if not (reachable t x) then " [unreachable]" else "")
         (if not (productive t x) then " [unproductive]" else ""));
    Buffer.add_string buf (set "first" false (first t x) ^ "\n");
    Buffer.add_string buf (set "follow" (follow_end t x) (follow t x) ^ "\n");
    Buffer.add_string buf (set "sync" (follow_end t x) (sync t x) ^ "\n")
  done;
  List.iter
    (fun (d : Analyze.decision) ->
      Buffer.add_string buf
        (Printf.sprintf "decision %s: %s, %d alternatives, %d states%s\n"
           (Names.nonterminal g d.Analyze.nt)
           (Analyze.lookahead_to_string d.Analyze.lookahead)
           d.Analyze.n_alts d.Analyze.states
           (match List.length d.Analyze.conflicts with
           | 0 -> ""
           | n ->
             Printf.sprintf ", %d conflict%s" n (if n = 1 then "" else "s"))))
    (decisions t);
  Buffer.contents buf

(* --- Files --------------------------------------------------------------- *)

let save t file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (encode t))

let load ?expect_fingerprint file =
  match open_in_bin file with
  | exception Sys_error msg -> Error (Malformed msg)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | exception _ -> Error Truncated
        | s -> decode ?expect_fingerprint s)
