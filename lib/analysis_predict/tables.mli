(** Flat decision-table images: FIRST/FOLLOW/sync sets and per-decision SLL
    verdicts as one fingerprinted int-array artifact (`costar tables`).

    The on-disk format is a plain-text header — magic, format version,
    grammar fingerprint, payload word count, FNV-1a checksum — followed by
    the payload as little-endian 32-bit words.  {!decode} validates the
    header, the checksum, and the full payload structure before returning;
    a truncated or corrupted image yields a typed {!error}, never an
    exception or a silently wrong table.  Decoding keeps the word array
    verbatim, so [save (load f)] is byte-identical to [f], and
    {!decisions} reconstructs records structurally identical to the live
    {!Analyze.analyze} output (the CI differential gate). *)

open Costar_grammar
open Costar_grammar.Symbols

type t

type error =
  | Bad_magic
  | Bad_version of string
  | Fingerprint_mismatch of { expected : string; found : string }
  | Truncated
  | Checksum_mismatch
  | Malformed of string

val error_to_string : error -> string

(** [build g flow r] packs the dataflow facts of [flow] and the decision
    verdicts of [r] (both for grammar [g]) into an image. *)
val build : Grammar.t -> Costar_flow.Flow.t -> Analyze.t -> t

val encode : t -> string
val decode : ?expect_fingerprint:string -> string -> (t, error) result
val save : t -> string -> unit
val load : ?expect_fingerprint:string -> string -> (t, error) result

val fingerprint : t -> string
val k_bound : t -> int

(** (n_terminals, n_nonterminals, n_productions, n_decisions). *)
val sizes : t -> int * int * int * int

val nullable : t -> nonterminal -> bool
val reachable : t -> nonterminal -> bool
val productive : t -> nonterminal -> bool

(** Sorted dense terminal ids. *)
val first : t -> nonterminal -> terminal list

val follow : t -> nonterminal -> terminal list
val sync : t -> nonterminal -> terminal list

(** Whether end-of-input may follow the nonterminal. *)
val follow_end : t -> nonterminal -> bool

(** The decision records reconstructed from the image, in the same order
    {!Analyze.analyze} emits them. *)
val decisions : t -> Analyze.decision list

(** Structural equality — the differential gate's definition of
    "bit-identical" for reconstructed decisions. *)
val same_decisions : Analyze.decision list -> Analyze.decision list -> bool

(** Human-readable rendering of the whole image. *)
val dump : Grammar.t -> t -> string
